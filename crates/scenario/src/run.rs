//! Executing a validated [`ScenarioSpec`].
//!
//! The figure-shaped kinds (`time_accuracy`, `xi_sweep`, `scalability`)
//! dispatch straight into the shared `experiments` drivers — the same code
//! paths the legacy figure binaries call, so a scenario that reproduces a
//! figure is byte-identical to the binary. The generic `grid` kind expands
//! the sweep cross-product ([`crate::spec::expand_grid`]) and fans the flat
//! `(cell × seed)` list through `harness::run_replicated_isolated`, printing
//! a summary table and writing `<csv_prefix>_grid.csv`; a panicking
//! replicate is retried once and reported after the table instead of
//! aborting the sweep.
//!
//! CLI precedence: the `--seeds N` and `--system-seeds` flags override the
//! spec's `run.seeds` / `run.system_seeds` keys, and `AIRFEDGA_SCALE`
//! selects the scale exactly as it does for the figure binaries.

use crate::spec::{expand_grid, GridCell, ScenarioKind, ScenarioSpec};
use crate::ScenarioError;
use experiments::figures::{print_speedups, run_time_accuracy_figure, FigureParams};
use experiments::harness::{run_replicated_isolated, RunSummary};
use experiments::report::{fmt_opt_secs, fmt_secs, try_write_csv, Table};
use experiments::scale::{seeds_flag_opt, system_seeds_flag, Scale};
use experiments::sweeps::{
    build_sweep_mechanism, fmt_xi, run_scalability, run_xi_sweep, ScalabilityFigure, XiSweepFigure,
};
use fedml::rng::Rng64;

/// The command-line overrides a driver binary may apply on top of a spec.
#[derive(Debug, Clone, Copy, Default)]
pub struct CliOverrides {
    /// `--seeds N`, overriding the spec's `run.seeds`.
    pub seeds: Option<usize>,
    /// `--system-seeds`, OR-ed with the spec's `run.system_seeds`.
    pub system_seeds: bool,
}

impl CliOverrides {
    /// Parse the overrides from the process arguments.
    pub fn from_args() -> Self {
        Self {
            seeds: seeds_flag_opt(),
            system_seeds: system_seeds_flag(),
        }
    }
}

/// Resolve the spec + scale + CLI overrides into the shared driver bundle.
fn figure_params(spec: &ScenarioSpec, scale: Scale, cli: &CliOverrides) -> FigureParams {
    FigureParams {
        scale,
        num_seeds: cli.seeds.unwrap_or(spec.num_seeds),
        vary_system: cli.system_seeds || spec.vary_system,
        run_seed: spec.run_seed,
        system_seed: spec.system_seed,
        num_workers: spec.num_workers,
        total_rounds: spec.rounds,
        eval_every: spec.eval_every,
        max_virtual_time: spec.max_virtual_time,
    }
}

/// Execute a validated scenario at the given scale with the given CLI
/// overrides. Prints and writes exactly what the equivalent figure binary
/// would (no extra banners — output stays byte-comparable).
pub fn execute(spec: &ScenarioSpec, scale: Scale, cli: &CliOverrides) {
    let params = figure_params(spec, scale, cli);
    match spec.kind {
        ScenarioKind::TimeAccuracy => {
            let outcome = run_time_accuracy_figure(
                &spec.title,
                spec.base_config.clone(),
                &spec.mechanisms,
                &spec.accuracy_targets,
                &spec.csv_prefix,
                &params,
            );
            if let Some(target) = spec.speedup_target {
                print_speedups(&outcome, target);
            }
        }
        ScenarioKind::XiSweep => run_xi_sweep(
            &XiSweepFigure {
                title: spec.title.clone(),
                workload: spec.base_config.clone(),
                xis: spec.sweep_xi.clone(),
                targets: spec.accuracy_targets.clone(),
                csv_name: format!("{}_xi_sweep.csv", spec.csv_prefix),
                rounds_factor: 2,
            },
            &params,
        ),
        ScenarioKind::Scalability => run_scalability(
            &ScalabilityFigure {
                title: spec.title.clone(),
                workload: spec.base_config.clone(),
                worker_counts: spec.sweep_num_workers.clone(),
                per_worker_samples: spec.per_worker_samples,
                target: spec.accuracy_targets[0],
                mechanisms: spec.mechanisms.clone(),
                csv_name: format!("{}_scalability.csv", spec.csv_prefix),
            },
            &params,
        ),
        ScenarioKind::Grid => run_grid_scenario(spec, &params),
    }
}

/// Parse and execute a scenario document with the binary defaults: scale
/// from `AIRFEDGA_SCALE`, overrides from the command line. The entry point
/// of `airfedga-run` and of the thin figure wrappers.
pub fn run_scenario_str(src: &str) -> Result<(), ScenarioError> {
    let spec = ScenarioSpec::parse(src)?;
    execute(&spec, Scale::from_env(), &CliOverrides::from_args());
    Ok(())
}

/// The generic cross-product sweep: every [`GridCell`] builds its own system
/// (axes may change the worker count) and runs its mechanism, with the flat
/// `(cell × seed)` product fanned across the persistent pool. Cells derive
/// all randomness from their own `(system_seed, run_seed)`, so the grid is
/// bit-identical to the sequential double loop at any thread count / chunk
/// factor.
fn run_grid_scenario(spec: &ScenarioSpec, params: &FigureParams) {
    let scale = params.scale;
    let plan = params.plan();
    let seeds = plan.run_seeds.clone();
    let base = params.apply(spec.base_config.clone());
    let rounds = params.rounds();
    let eval_every = params.eval();
    let cells = expand_grid(spec);

    println!(
        "{}\n  workload: {} | {} cells | {} rounds | {} seed(s) (scale: {scale:?})",
        spec.title,
        base.dataset.name,
        cells.len(),
        rounds,
        seeds.len()
    );
    if plan.vary_system {
        println!(
            "  system re-sampled per replicate (system seeds {}..{})",
            plan.system_seed,
            plan.system_seed + (seeds.len() as u64 - 1)
        );
    }

    // Only the worker-count axis affects the system build (xi and the
    // mechanism act at run time), so with a fixed system seed the distinct
    // systems are one per worker count — build each once and share it
    // across cells and replicates. Under `--system-seeds` every replicate
    // needs its own sample, so cells build inline instead.
    let cfg_for = |n: Option<usize>| {
        let mut cfg = base.clone();
        if let Some(n) = n {
            cfg.num_workers = n;
        }
        cfg
    };
    let mut distinct_ns: Vec<Option<usize>> = Vec::new();
    for cell in &cells {
        if !distinct_ns.contains(&cell.num_workers) {
            distinct_ns.push(cell.num_workers);
        }
    }
    let shared: Vec<airfedga::system::FlSystem> = if plan.vary_system {
        Vec::new()
    } else {
        distinct_ns
            .iter()
            .map(|&n| cfg_for(n).build(&mut Rng64::seed_from(plan.system_seed)))
            .collect()
    };
    // Cells run panic-isolated: a failed (cell, seed) replicate is retried
    // once sequentially, surviving replicates keep their statistics, and the
    // failures are reported after the table instead of aborting the run.
    let cell_label = |_i: usize, cell: &GridCell| {
        let mut parts: Vec<String> = Vec::new();
        if let Some(n) = cell.num_workers {
            parts.push(format!("N={n}"));
        }
        if let Some(xi) = cell.xi {
            parts.push(format!("xi={}", fmt_xi(xi)));
        }
        parts.push(cell.mechanism.label().to_string());
        parts.join(" ")
    };
    let outcome = run_replicated_isolated(cells.clone(), &seeds, cell_label, |cell, seed| {
        let mech = build_sweep_mechanism(
            cell.mechanism,
            cell.xi,
            rounds,
            eval_every,
            params.max_virtual_time,
        );
        if plan.vary_system {
            let system =
                cfg_for(cell.num_workers).build(&mut Rng64::seed_from(plan.system_seed_for(seed)));
            RunSummary::from_trace(mech.run(&system, &mut Rng64::seed_from(seed)))
        } else {
            let idx = distinct_ns
                .iter()
                .position(|&n| n == cell.num_workers)
                .expect("cell worker count is in distinct_ns by construction");
            RunSummary::from_trace(mech.run(&shared[idx], &mut Rng64::seed_from(seed)))
        }
    });
    let stats = &outcome.cells;

    let replicated = seeds.len() > 1;
    let faulty = !spec.base_config.faults.is_none();
    let has_n = spec.sweep_num_workers.is_some();
    let has_xi = spec.sweep_xi.is_some();
    let mut header: Vec<String> = Vec::new();
    let mut csv_header: Vec<String> = Vec::new();
    if has_n {
        header.push("N".to_string());
        csv_header.push("n".to_string());
    }
    if has_xi {
        header.push("xi".to_string());
        csv_header.push("xi".to_string());
    }
    header.push("mechanism".to_string());
    csv_header.push("mechanism".to_string());
    if replicated {
        csv_header.push("seeds".to_string());
    }
    for label in ["final acc", "final loss", "avg round (s)", "total time (s)"] {
        header.push(label.to_string());
    }
    if replicated {
        for stem in ["final_acc", "final_loss", "avg_round_s", "total_time_s"] {
            csv_header.push(format!("{stem}_mean"));
            csv_header.push(format!("{stem}_std"));
        }
    } else {
        for stem in ["final_acc", "final_loss", "avg_round_s", "total_time_s"] {
            csv_header.push(stem.to_string());
        }
    }
    for t in &spec.accuracy_targets {
        header.push(format!("t@{:.0}% (s)", t * 100.0));
        let pct = t * 100.0;
        if replicated {
            csv_header.push(format!("t{pct:.0}_mean"));
            csv_header.push(format!("t{pct:.0}_std"));
            csv_header.push(format!("t{pct:.0}_n"));
        } else {
            csv_header.push(format!("t{pct:.0}"));
        }
    }
    // Robustness columns only appear on faulty workloads, so fault-free
    // scenarios keep their historical byte-exact layout.
    if faulty {
        header.push("participation".to_string());
        header.push("rounds survived".to_string());
        if replicated {
            for stem in ["participation", "rounds_survived"] {
                csv_header.push(format!("{stem}_mean"));
                csv_header.push(format!("{stem}_std"));
            }
        } else {
            csv_header.push("participation".to_string());
            csv_header.push("rounds_survived".to_string());
        }
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&spec.title, &header_refs);
    let mut csv = csv_header.join(",");
    csv.push('\n');

    for (cell, stat) in cells.iter().zip(stats) {
        // A cell whose replicates all died even after the retry has no
        // statistics; its row is omitted and the failure report names it.
        let Some(stat) = stat else { continue };
        let mut row: Vec<String> = Vec::new();
        let mut csv_row: Vec<String> = Vec::new();
        if has_n {
            let n = cell.num_workers.expect("has_n implies a worker count");
            row.push(n.to_string());
            csv_row.push(n.to_string());
        }
        if has_xi {
            let xi = cell.xi.expect("has_xi implies a xi value");
            row.push(fmt_xi(xi));
            csv_row.push(fmt_xi(xi));
        }
        row.push(stat.mechanism.clone());
        csv_row.push(stat.mechanism.clone());
        if replicated {
            csv_row.push(stat.seeds.len().to_string());
            let acc = stat.final_accuracy_stats();
            let loss = stat.final_loss_stats();
            let round = stat.average_round_time_stats();
            let last = stat.points.last().expect("grid trace is non-empty");
            row.push(acc.fmt_mean_std(3));
            row.push(loss.fmt_mean_std(3));
            row.push(round.fmt_mean_std(1));
            row.push(last.time.fmt_mean_std(0));
            for s in [&acc, &loss] {
                csv_row.push(format!("{:.4}", s.mean));
                csv_row.push(format!("{:.4}", s.std));
            }
            for s in [&round, &last.time] {
                csv_row.push(format!("{:.2}", s.mean));
                csv_row.push(format!("{:.2}", s.std));
            }
            for t in &spec.accuracy_targets {
                let s = stat.time_to_accuracy_stats(*t);
                row.push(s.fmt_with_count(0, stat.seeds.len()));
                csv_row.push(s.csv_fields(1));
            }
            if faulty {
                let part = stat.participation_rate_stats();
                let survived = stat.rounds_survived_stats();
                row.push(part.fmt_mean_std(3));
                row.push(survived.fmt_mean_std(1));
                csv_row.push(format!("{:.4}", part.mean));
                csv_row.push(format!("{:.4}", part.std));
                csv_row.push(format!("{:.2}", survived.mean));
                csv_row.push(format!("{:.2}", survived.std));
            }
        } else {
            let s = stat.first();
            row.push(format!("{:.3}", s.final_accuracy));
            row.push(format!("{:.3}", s.final_loss));
            row.push(fmt_secs(s.average_round_time));
            row.push(fmt_secs(s.total_time));
            csv_row.push(format!("{:.4}", s.final_accuracy));
            csv_row.push(format!("{:.4}", s.final_loss));
            csv_row.push(format!("{:.2}", s.average_round_time));
            csv_row.push(format!("{:.2}", s.total_time));
            for t in &spec.accuracy_targets {
                let tta = s.time_to_accuracy(*t);
                row.push(fmt_opt_secs(tta));
                csv_row.push(tta.map(|t| format!("{t:.1}")).unwrap_or_default());
            }
            if faulty {
                row.push(format!("{:.3}", s.participation_rate));
                row.push(format!("{}", s.rounds_survived));
                csv_row.push(format!("{:.4}", s.participation_rate));
                csv_row.push(s.rounds_survived.to_string());
            }
        }
        table.add_row(row);
        csv.push_str(&csv_row.join(","));
        csv.push('\n');
    }
    println!("{}", table.render());
    try_write_csv(&format!("{}_grid.csv", spec.csv_prefix), &csv);
    // Empty for a healthy run, so fault-free stdout stays byte-identical.
    print!("{}", outcome.failure_report());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end smoke: a tiny grid scenario runs green from the spec text
    /// alone, exercising parse → validate → expand → replicated run → report.
    #[test]
    fn tiny_grid_scenario_runs_end_to_end() {
        let src = r#"
[scenario]
name = "test_scenario_grid"
kind = "grid"
title = "test grid scenario"

[system]
workload = "mnist_lr_quick"

[run]
mechanisms = ["air-fedavg", "air-fedga"]
accuracy_targets = [0.5]
rounds = 4
eval_every = 2

[sweep]
xi = [0.3, 1.0]
"#;
        let spec = ScenarioSpec::parse(src).unwrap();
        execute(&spec, Scale::Quick, &CliOverrides::default());
        // And replicated, with system re-sampling.
        execute(
            &spec,
            Scale::Quick,
            &CliOverrides {
                seeds: Some(2),
                system_seeds: true,
            },
        );
    }

    /// A grid scenario with a `[faults]` table runs end-to-end: churn plus a
    /// straggler deadline, replicated, with the robustness columns appended.
    #[test]
    fn faulty_grid_scenario_runs_end_to_end() {
        let src = r#"
[scenario]
name = "test_scenario_churn"
kind = "grid"
title = "test churn grid scenario"

[system]
workload = "mnist_lr_quick"

[faults]
preset = "churn:0.002"
straggler_fraction = 0.3
straggler_slowdown = 3.0
deadline = 400

[run]
mechanisms = ["air-fedavg", "air-fedga"]
accuracy_targets = [0.5]
rounds = 4
eval_every = 2
seeds = 2

[sweep]
xi = [0.3, 1.0]
"#;
        let spec = ScenarioSpec::parse(src).unwrap();
        assert!(!spec.base_config.faults.is_none());
        execute(&spec, Scale::Quick, &CliOverrides::default());
    }

    /// A time_accuracy scenario with registry components no figure binary
    /// exposes (Dirichlet partition + OMA baselines on quick LR).
    #[test]
    fn novel_time_accuracy_combination_runs() {
        let src = r#"
[scenario]
name = "test_scenario_dirichlet"
kind = "time_accuracy"
title = "test dirichlet scenario"

[system]
workload = "mnist_lr_quick"
partitioner = "dirichlet:0.5"

[run]
mechanisms = ["fedavg", "tifl"]
accuracy_targets = [0.5]
rounds = 4
eval_every = 2
speedup_target = 0.5
"#;
        let spec = ScenarioSpec::parse(src).unwrap();
        execute(&spec, Scale::Quick, &CliOverrides::default());
    }
}
