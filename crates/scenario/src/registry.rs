//! The string-keyed component registry scenario files compose from.
//!
//! Every axis the paper's evaluation varies — dataset, model, partitioner,
//! heterogeneity model, wireless channel preset, mechanism, whole-workload
//! preset — is registered here under a stable name, so a scenario file can
//! compose combinations the hardcoded figure binaries never exposed (e.g. a
//! Dirichlet partition of the CIFAR-10-like dataset compared across all five
//! mechanisms). Unknown names fail with an error listing the available keys,
//! and `airfedga-run --list-components` prints the whole catalogue.
//!
//! Parameterised components embed their parameters in the key:
//! `dirichlet:0.5` (Dirichlet partitioner with α = 0.5) and
//! `uniform:1:10` (heterogeneity `κ_i ~ U[1, 10]`).

use crate::ScenarioError;
use airfedga::system::FlSystemConfig;
use experiments::harness::MechanismChoice;
use faults::FaultSpec;
use fedml::dataset::SyntheticSpec;
use fedml::model::ModelKind;
use fedml::partition::Partitioner;
use simcore::worker::HeterogeneityModel;
use wireless::timing::WirelessConfig;

/// One registered component: a stable name, a one-line summary for
/// `--list-components`, and its constructor.
struct Component<T> {
    name: &'static str,
    summary: &'static str,
    build: fn() -> T,
}

const WORKLOADS: &[Component<FlSystemConfig>] = &[
    Component {
        name: "mnist_lr",
        summary: "the paper's headline workload: LR (2x hidden FC) on MNIST-like, 100 workers",
        build: FlSystemConfig::mnist_lr,
    },
    Component {
        name: "mnist_lr_quick",
        summary: "small/fast mnist_lr variant (10 workers, small shards) for tests",
        build: FlSystemConfig::mnist_lr_quick,
    },
    Component {
        name: "mnist_cnn",
        summary: "CNN surrogate on MNIST-like (Figs. 4, 8, 9, 10)",
        build: FlSystemConfig::mnist_cnn,
    },
    Component {
        name: "cifar_cnn",
        summary: "CNN surrogate on CIFAR-10-like (Figs. 5, 9)",
        build: FlSystemConfig::cifar_cnn,
    },
    Component {
        name: "imagenet_vgg",
        summary: "VGG-16 surrogate on ImageNet-100-like (Fig. 6)",
        build: FlSystemConfig::imagenet_vgg,
    },
];

const DATASETS: &[Component<SyntheticSpec>] = &[
    Component {
        name: "mnist_like",
        summary: "10-class MNIST-like synthetic mixture",
        build: SyntheticSpec::mnist_like,
    },
    Component {
        name: "cifar10_like",
        summary: "10-class CIFAR-10-like synthetic mixture (harder)",
        build: SyntheticSpec::cifar10_like,
    },
    Component {
        name: "imagenet100_like",
        summary: "100-class ImageNet-100-like synthetic mixture",
        build: SyntheticSpec::imagenet100_like,
    },
];

const MODELS: &[(&str, &str, ModelKind)] = &[
    (
        "paper_lr",
        "the paper's \"LR\": 2-hidden-layer fully-connected net",
        ModelKind::PaperLr,
    ),
    ("cnn_mnist", "CNN surrogate for MNIST", ModelKind::CnnMnist),
    (
        "cnn_cifar",
        "CNN surrogate for CIFAR-10",
        ModelKind::CnnCifar,
    ),
    ("vgg16", "VGG-16 surrogate", ModelKind::Vgg16),
    (
        "convex_lr",
        "plain convex multinomial logistic regression",
        ModelKind::ConvexLr,
    ),
];

const MECHANISMS: &[(&str, &str, MechanismChoice)] = &[
    (
        "air-fedga",
        "the paper's contribution (Algorithms 1-3)",
        MechanismChoice::AirFedGa,
    ),
    (
        "air-fedavg",
        "AirComp synchronous baseline",
        MechanismChoice::AirFedAvg,
    ),
    (
        "dynamic",
        "AirComp synchronous with per-round worker scheduling",
        MechanismChoice::Dynamic,
    ),
    (
        "fedavg",
        "OMA synchronous baseline",
        MechanismChoice::FedAvg,
    ),
    (
        "tifl",
        "OMA tier-asynchronous baseline",
        MechanismChoice::TiFl,
    ),
];

/// The built-in component registry. A zero-sized handle today (the catalogue
/// is static), but every lookup goes through it so a future PR can layer
/// user-registered components on top without touching call sites.
#[derive(Debug, Clone, Copy, Default)]
pub struct Registry;

impl Registry {
    /// The built-in catalogue.
    pub fn builtin() -> Self {
        Registry
    }

    fn lookup<T>(kind: &str, key: &str, table: &[Component<T>]) -> Result<T, ScenarioError> {
        table
            .iter()
            .find(|c| c.name == key)
            .map(|c| (c.build)())
            .ok_or_else(|| {
                ScenarioError::new(format!(
                    "unknown {kind} {key:?}; available: {}",
                    table.iter().map(|c| c.name).collect::<Vec<_>>().join(", ")
                ))
            })
    }

    /// A whole-workload preset (`[system] workload = "..."`).
    pub fn workload(&self, key: &str) -> Result<FlSystemConfig, ScenarioError> {
        Self::lookup("workload", key, WORKLOADS)
    }

    /// A dataset family (`[system] dataset = "..."`).
    pub fn dataset(&self, key: &str) -> Result<SyntheticSpec, ScenarioError> {
        Self::lookup("dataset", key, DATASETS)
    }

    /// A model family (`[system] model = "..."`).
    pub fn model(&self, key: &str) -> Result<ModelKind, ScenarioError> {
        MODELS
            .iter()
            .find(|(n, _, _)| *n == key)
            .map(|(_, _, kind)| *kind)
            .ok_or_else(|| {
                ScenarioError::new(format!(
                    "unknown model {key:?}; available: {}",
                    MODELS
                        .iter()
                        .map(|(n, _, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })
    }

    /// A mechanism (`[run] mechanisms = [...]`). Accepts the registry key or
    /// the paper-legend label, case-insensitively and ignoring `-`/`_`/space
    /// (so `"Air-FedGA"`, `"air_fedga"` and `"airfedga"` all resolve).
    pub fn mechanism(&self, key: &str) -> Result<MechanismChoice, ScenarioError> {
        let norm = |s: &str| {
            s.chars()
                .filter(|c| !matches!(c, '-' | '_' | ' '))
                .collect::<String>()
                .to_ascii_lowercase()
        };
        let wanted = norm(key);
        MECHANISMS
            .iter()
            .find(|(n, _, choice)| norm(n) == wanted || norm(choice.label()) == wanted)
            .map(|(_, _, choice)| *choice)
            .ok_or_else(|| {
                ScenarioError::new(format!(
                    "unknown mechanism {key:?}; available: {}",
                    MECHANISMS
                        .iter()
                        .map(|(n, _, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })
    }

    /// A partitioner (`[system] partitioner = "..."`): `label_skew`, `iid`,
    /// or `dirichlet:<alpha>`.
    pub fn partitioner(&self, key: &str) -> Result<Partitioner, ScenarioError> {
        match key {
            "label_skew" => Ok(Partitioner::LabelSkew),
            "iid" => Ok(Partitioner::Iid),
            _ => {
                if let Some(alpha) = key.strip_prefix("dirichlet:") {
                    let alpha: f64 = alpha.parse().map_err(|_| {
                        ScenarioError::new(format!(
                            "invalid dirichlet alpha {alpha:?} in partitioner {key:?}"
                        ))
                    })?;
                    if alpha <= 0.0 || !alpha.is_finite() {
                        return Err(ScenarioError::new(format!(
                            "dirichlet alpha must be a positive finite number, got {alpha}"
                        )));
                    }
                    Ok(Partitioner::Dirichlet { alpha })
                } else {
                    Err(ScenarioError::new(format!(
                        "unknown partitioner {key:?}; available: label_skew, iid, \
                         dirichlet:<alpha>"
                    )))
                }
            }
        }
    }

    /// A heterogeneity model (`[system] heterogeneity = "..."`):
    /// `homogeneous`, `uniform` (the paper's `U[1, 10]`), or
    /// `uniform:<lo>:<hi>`.
    pub fn heterogeneity(&self, key: &str) -> Result<HeterogeneityModel, ScenarioError> {
        match key {
            "homogeneous" => Ok(HeterogeneityModel::Homogeneous),
            "uniform" => Ok(HeterogeneityModel::default()),
            _ => {
                if let Some(rest) = key.strip_prefix("uniform:") {
                    let parts: Vec<&str> = rest.split(':').collect();
                    let bounds: Option<(f64, f64)> = match parts.as_slice() {
                        [lo, hi] => lo.parse().ok().zip(hi.parse().ok()),
                        _ => None,
                    };
                    match bounds {
                        Some((lo, hi)) if lo > 0.0 && hi >= lo => {
                            Ok(HeterogeneityModel::Uniform { lo, hi })
                        }
                        _ => Err(ScenarioError::new(format!(
                            "invalid uniform heterogeneity bounds in {key:?} \
                             (expected uniform:<lo>:<hi> with 0 < lo <= hi)"
                        ))),
                    }
                } else {
                    Err(ScenarioError::new(format!(
                        "unknown heterogeneity {key:?}; available: homogeneous, uniform, \
                         uniform:<lo>:<hi>"
                    )))
                }
            }
        }
    }

    /// A fault-injection preset (`[faults] preset = "..."`): `none`,
    /// `churn:<rate>` (Poisson dropout at `<rate>`/s with 60 s mean
    /// downtime), `stragglers:<frac>:<slow>` (that fraction of workers
    /// slowed by up to `<slow>`×), or `outage:<rate>:<duration>` (channel
    /// outage bursts). Explicit `[faults]` keys override preset fields.
    pub fn fault_preset(&self, key: &str) -> Result<FaultSpec, ScenarioError> {
        fn num(part: &str, key: &str) -> Result<f64, ScenarioError> {
            part.parse::<f64>()
                .ok()
                .filter(|x| x.is_finite())
                .ok_or_else(|| {
                    ScenarioError::new(format!("invalid number {part:?} in fault preset {key:?}"))
                })
        }
        let mut spec = FaultSpec::none();
        if key == "none" {
            return Ok(spec);
        }
        if let Some(rate) = key.strip_prefix("churn:") {
            let rate = num(rate, key)?;
            if rate < 0.0 {
                return Err(ScenarioError::new(format!(
                    "churn rate must be non-negative, got {rate}"
                )));
            }
            spec.dropout_rate = rate;
            spec.mean_downtime = 60.0;
            return Ok(spec);
        }
        if let Some(rest) = key.strip_prefix("stragglers:") {
            if let [frac, slow] = rest.split(':').collect::<Vec<_>>().as_slice() {
                let frac = num(frac, key)?;
                let slow = num(slow, key)?;
                if !(0.0..=1.0).contains(&frac) || slow < 1.0 {
                    return Err(ScenarioError::new(format!(
                        "stragglers preset needs a fraction in [0, 1] and a slowdown \
                         of at least 1, got {key:?}"
                    )));
                }
                spec.straggler_fraction = frac;
                spec.straggler_slowdown = slow;
                return Ok(spec);
            }
        }
        if let Some(rest) = key.strip_prefix("outage:") {
            if let [rate, dur] = rest.split(':').collect::<Vec<_>>().as_slice() {
                let rate = num(rate, key)?;
                let dur = num(dur, key)?;
                if rate < 0.0 || dur <= 0.0 {
                    return Err(ScenarioError::new(format!(
                        "outage preset needs a non-negative rate and a positive \
                         duration, got {key:?}"
                    )));
                }
                spec.outage_rate = rate;
                spec.outage_duration = dur;
                return Ok(spec);
            }
        }
        Err(ScenarioError::new(format!(
            "unknown fault preset {key:?}; available: none, churn:<rate>, \
             stragglers:<frac>:<slow>, outage:<rate>:<duration>"
        )))
    }

    /// A wireless channel preset (`[system] channel = "..."`); the presets
    /// live with the physical-layer constants in
    /// [`wireless::timing::WirelessConfig::preset`].
    pub fn channel(&self, key: &str) -> Result<WirelessConfig, ScenarioError> {
        WirelessConfig::preset(key).ok_or_else(|| {
            ScenarioError::new(format!(
                "unknown channel preset {key:?}; available: {}",
                WirelessConfig::preset_names().join(", ")
            ))
        })
    }

    /// Human-readable catalogue for `airfedga-run --list-components`.
    pub fn describe(&self) -> String {
        let mut out = String::from("Scenario registry components\n");
        let mut section = |title: &str, rows: Vec<(String, String)>| {
            out.push_str(&format!("\n{title}\n"));
            let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, summary) in rows {
                out.push_str(&format!("  {name:<width$}  {summary}\n"));
            }
        };
        section(
            "[system] workload =",
            WORKLOADS
                .iter()
                .map(|c| (c.name.to_string(), c.summary.to_string()))
                .collect(),
        );
        section(
            "[system] dataset =",
            DATASETS
                .iter()
                .map(|c| (c.name.to_string(), c.summary.to_string()))
                .collect(),
        );
        section(
            "[system] model =",
            MODELS
                .iter()
                .map(|(n, s, _)| (n.to_string(), s.to_string()))
                .collect(),
        );
        section(
            "[system] partitioner =",
            vec![
                (
                    "label_skew".to_string(),
                    "the paper's single-label shards (§VI.A.1)".to_string(),
                ),
                (
                    "iid".to_string(),
                    "shuffled, evenly dealt shards".to_string(),
                ),
                (
                    "dirichlet:<alpha>".to_string(),
                    "Dirichlet label proportions; smaller alpha = more skew".to_string(),
                ),
            ],
        );
        section(
            "[system] heterogeneity =",
            vec![
                (
                    "uniform".to_string(),
                    "the paper's k_i ~ U[1, 10] latency scaling".to_string(),
                ),
                (
                    "uniform:<lo>:<hi>".to_string(),
                    "custom uniform latency-scaling bounds".to_string(),
                ),
                (
                    "homogeneous".to_string(),
                    "identical workers (isolates Non-IID effects)".to_string(),
                ),
            ],
        );
        section(
            "[system] channel =",
            WirelessConfig::preset_names()
                .iter()
                .map(|n| {
                    (
                        n.to_string(),
                        "wireless preset (see wireless::timing docs)".to_string(),
                    )
                })
                .collect(),
        );
        section(
            "[faults] preset =",
            vec![
                (
                    "none".to_string(),
                    "the zero-fault plan (default)".to_string(),
                ),
                (
                    "churn:<rate>".to_string(),
                    "Poisson worker dropout at <rate>/s, 60 s mean downtime".to_string(),
                ),
                (
                    "stragglers:<frac>:<slow>".to_string(),
                    "that fraction of workers slowed by up to <slow>x".to_string(),
                ),
                (
                    "outage:<rate>:<duration>".to_string(),
                    "channel-outage bursts (Poisson starts, fixed length)".to_string(),
                ),
            ],
        );
        section(
            "[run] mechanisms =",
            MECHANISMS
                .iter()
                .map(|(n, s, _)| (n.to_string(), s.to_string()))
                .collect(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalogue_entry_builds() {
        let r = Registry::builtin();
        for c in WORKLOADS {
            assert_eq!(
                r.workload(c.name).unwrap().dataset.name,
                (c.build)().dataset.name
            );
        }
        for c in DATASETS {
            assert_eq!(r.dataset(c.name).unwrap().name, (c.build)().name);
        }
        for (name, _, kind) in MODELS {
            assert_eq!(r.model(name).unwrap(), *kind);
        }
        for (name, _, choice) in MECHANISMS {
            assert_eq!(r.mechanism(name).unwrap(), *choice);
        }
        for name in WirelessConfig::preset_names() {
            r.channel(name).unwrap();
        }
    }

    #[test]
    fn mechanism_names_match_labels_and_spellings() {
        let r = Registry::builtin();
        for key in ["Air-FedGA", "air_fedga", "airfedga", "AIR-FEDGA"] {
            assert_eq!(r.mechanism(key).unwrap(), MechanismChoice::AirFedGa);
        }
        assert_eq!(r.mechanism("TiFL").unwrap(), MechanismChoice::TiFl);
    }

    #[test]
    fn parameterised_keys_parse() {
        let r = Registry::builtin();
        assert_eq!(
            r.partitioner("dirichlet:0.5").unwrap(),
            Partitioner::Dirichlet { alpha: 0.5 }
        );
        assert_eq!(r.partitioner("iid").unwrap(), Partitioner::Iid);
        assert_eq!(
            r.heterogeneity("uniform:2:4").unwrap(),
            HeterogeneityModel::Uniform { lo: 2.0, hi: 4.0 }
        );
        assert_eq!(
            r.heterogeneity("homogeneous").unwrap(),
            HeterogeneityModel::Homogeneous
        );
    }

    #[test]
    fn fault_presets_parse() {
        let r = Registry::builtin();
        assert!(r.fault_preset("none").unwrap().is_none());
        let churn = r.fault_preset("churn:0.002").unwrap();
        assert_eq!(churn.dropout_rate, 0.002);
        assert_eq!(churn.mean_downtime, 60.0);
        churn.validate();
        let strag = r.fault_preset("stragglers:0.3:3").unwrap();
        assert_eq!(strag.straggler_fraction, 0.3);
        assert_eq!(strag.straggler_slowdown, 3.0);
        strag.validate();
        let outage = r.fault_preset("outage:0.001:20").unwrap();
        assert_eq!(outage.outage_rate, 0.001);
        assert_eq!(outage.outage_duration, 20.0);
        outage.validate();
    }

    #[test]
    fn bad_fault_presets_are_rejected() {
        let r = Registry::builtin();
        assert!(r.fault_preset("churn:x").is_err());
        assert!(r.fault_preset("churn:-1").is_err());
        assert!(r.fault_preset("stragglers:1.5:3").is_err());
        assert!(r.fault_preset("stragglers:0.3:0.5").is_err());
        assert!(r.fault_preset("outage:0.01:0").is_err());
        let err = r.fault_preset("blackout").unwrap_err();
        assert!(err.msg.contains("churn:<rate>"), "{}", err.msg);
    }

    #[test]
    fn unknown_keys_list_the_alternatives() {
        let r = Registry::builtin();
        let err = r.workload("mnist").unwrap_err();
        assert!(err.msg.contains("mnist_lr"), "{}", err.msg);
        assert!(err.msg.contains("cifar_cnn"), "{}", err.msg);
        assert!(r.partitioner("dirichlet:x").is_err());
        assert!(r.partitioner("dirichlet:-1").is_err());
        assert!(r.heterogeneity("uniform:5:1").is_err());
        assert!(r
            .mechanism("fedprox")
            .unwrap_err()
            .msg
            .contains("air-fedga"));
    }

    #[test]
    fn describe_lists_every_section() {
        let text = Registry::builtin().describe();
        for needle in [
            "workload",
            "mnist_lr",
            "dataset",
            "model",
            "partitioner",
            "dirichlet:<alpha>",
            "heterogeneity",
            "channel",
            "[faults] preset =",
            "churn:<rate>",
            "mechanisms",
            "air-fedga",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
