//! The typed scenario spec: validation, defaulting and sweep expansion.
//!
//! [`ScenarioSpec::parse`] turns a scenario document into a fully-resolved,
//! validated spec: every component name is resolved through the
//! [`Registry`], every key is type-checked with line-numbered errors, and
//! **unknown keys are rejected** (a typo'd key fails loudly instead of
//! silently running the default). The spec then maps onto the shared
//! experiment drivers — `FlSystemConfig` + [`FigureParams`] for the figure
//! shapes, and the flat [`GridCell`] list `harness::run_replicated` consumes
//! for generic sweeps.
//!
//! ## Sweep expansion order
//!
//! [`expand_grid`] expands the sweep cross-product **deterministically and
//! independently of key order in the file**: `num_workers` is the outermost
//! axis, then `xi`, then `mechanisms` (innermost), each in the order its
//! values are written. So `num_workers = [10, 20]`, `xi = [0.1, 0.3]`,
//! `mechanisms = ["fedavg", "air-fedga"]` yields cells
//! `(10, 0.1, fedavg), (10, 0.1, air-fedga), (10, 0.3, fedavg), …,
//! (20, 0.3, air-fedga)` — the row order of the printed table and CSV, and
//! the cell order handed to the deterministic parallel grid.

use crate::registry::Registry;
use crate::toml::{self, Node, TomlTable, Value};
use crate::ScenarioError;
use airfedga::system::FlSystemConfig;
use experiments::harness::MechanismChoice;
use std::cell::RefCell;
use std::collections::BTreeSet;

/// Which driver shape a scenario executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Loss/accuracy-vs-time comparison of mechanisms on one system (the
    /// Figs. 3–6 / Fig. 9 shape).
    TimeAccuracy,
    /// Air-FedGA ξ-sweep (the Fig. 8 shape).
    XiSweep,
    /// Worker-count sweep over mechanisms (the Fig. 10 shape).
    Scalability,
    /// Generic cross-product sweep (`num_workers × xi × mechanisms`) with a
    /// summary table/CSV — combinations no figure binary exposes.
    Grid,
}

impl ScenarioKind {
    fn from_key(key: &str, line: usize) -> Result<Self, ScenarioError> {
        match key {
            "time_accuracy" => Ok(ScenarioKind::TimeAccuracy),
            "xi_sweep" => Ok(ScenarioKind::XiSweep),
            "scalability" => Ok(ScenarioKind::Scalability),
            "grid" => Ok(ScenarioKind::Grid),
            _ => Err(ScenarioError::at(
                line,
                format!(
                    "unknown scenario kind {key:?}; available: time_accuracy, xi_sweep, \
                     scalability, grid"
                ),
            )),
        }
    }
}

/// A fully-resolved, validated scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (`[scenario] name`).
    pub name: String,
    /// Driver shape (`[scenario] kind`).
    pub kind: ScenarioKind,
    /// Title printed by the driver (`[scenario] title`).
    pub title: String,
    /// Base name of the CSV outputs (`[scenario] csv_prefix`, default the
    /// scenario name).
    pub csv_prefix: String,
    /// The resolved workload, pre-scale (`[system]`).
    pub base_config: FlSystemConfig,
    /// Explicit worker-count override; wins over the scale preset.
    pub num_workers: Option<usize>,
    /// System-construction seed (`[system] seed`, default 42).
    pub system_seed: u64,
    /// Mechanisms compared (`[run] mechanisms`; empty only for `xi_sweep`,
    /// which is Air-FedGA by definition).
    pub mechanisms: Vec<MechanismChoice>,
    /// Accuracy targets reported (`[run] accuracy_targets`).
    pub accuracy_targets: Vec<f64>,
    /// Print the Air-FedGA speed-up lines at this target
    /// (`[run] speedup_target`; `time_accuracy` only).
    pub speedup_target: Option<f64>,
    /// Print the aggregation-energy table at these accuracy targets
    /// (`[run] energy_targets`; `time_accuracy` only — the Fig. 9 shape).
    pub energy_targets: Vec<f64>,
    /// Workload label in the energy table's title (`[run] energy_label`;
    /// requires `energy_targets`).
    pub energy_label: Option<String>,
    /// Explicit round budget (`[run] rounds`; default scale-dependent).
    pub rounds: Option<usize>,
    /// Explicit evaluation cadence (`[run] eval_every`).
    pub eval_every: Option<usize>,
    /// Virtual-time budget in seconds (`[run] max_virtual_time`).
    pub max_virtual_time: Option<f64>,
    /// Base run seed (`[run] seed`, default 4242; replicate `r` adds `r`).
    pub run_seed: u64,
    /// Replication count (`[run] seeds`, default 1; the `--seeds` CLI flag
    /// overrides it).
    pub num_seeds: usize,
    /// Re-sample the system per replicate (`[run] system_seeds`, default
    /// false; the `--system-seeds` CLI flag turns it on too).
    pub vary_system: bool,
    /// ξ sweep axis (`[sweep] xi`; `xi_sweep` default is the historical
    /// scale-dependent grid).
    pub sweep_xi: Option<Vec<f64>>,
    /// Worker-count sweep axis (`[sweep] num_workers`).
    pub sweep_num_workers: Option<Vec<usize>>,
    /// Per-worker shard size of the scalability sweep
    /// (`[sweep] per_worker_samples`, default 30).
    pub per_worker_samples: usize,
    /// Per-cell execution limits (`[limits]`; `time_accuracy` and `grid`
    /// kinds only). `None` — no table — keeps the historical behaviour.
    pub limits: Option<RunLimits>,
    /// Observability settings (`[telemetry]`). A pure side-channel: the
    /// default-reset copy is what the canonical spec form hashes, so these
    /// settings never re-key the runstore or change results.
    pub telemetry: TelemetrySettings,
}

/// The `[limits]` table: per-cell retry/timeout policy for the isolated
/// runners. Absent keys fall back to the harness defaults (one retry, no
/// backoff, no timeout).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunLimits {
    /// Wall-clock watchdog per cell attempt, seconds
    /// (`limits.cell_timeout_secs`).
    pub cell_timeout_secs: Option<f64>,
    /// Bounded retries after a failed attempt (`limits.max_retries`;
    /// 0 = fail fast).
    pub max_retries: Option<usize>,
    /// Base backoff in seconds between retries — retry `k` sleeps
    /// `k * retry_backoff` first (`limits.retry_backoff`).
    pub retry_backoff: Option<f64>,
}

/// The `[telemetry]` table: where (and whether) to write observability
/// artifacts. Purely additive — stdout, CSVs and runstore bytes are
/// identical with or without it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySettings {
    /// Sink directory for `spans.jsonl` / `metrics.json` / `profile.json`
    /// (`telemetry.dir`; the `--telemetry <dir>` CLI flag overrides it).
    pub dir: Option<String>,
    /// Progress-reporter policy (`telemetry.progress`: `"auto"` renders on a
    /// TTY only, `"force"` always, `"off"` never; the `--progress` CLI flag
    /// forces it on).
    pub progress: Option<String>,
}

/// One expanded cell of a `grid` scenario. Axis fields are `None` when the
/// spec does not sweep that axis (the base config's value applies).
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Worker count, when `[sweep] num_workers` is present.
    pub num_workers: Option<usize>,
    /// Air-FedGA ξ, when `[sweep] xi` is present (ignored by mechanisms
    /// without a ξ parameter).
    pub xi: Option<f64>,
    /// The mechanism this cell runs.
    pub mechanism: MechanismChoice,
}

/// Expand a `grid` scenario's sweep axes into the flat, deterministically
/// ordered cell list (see the module docs for the order contract).
pub fn expand_grid(spec: &ScenarioSpec) -> Vec<GridCell> {
    let workers: Vec<Option<usize>> = match &spec.sweep_num_workers {
        Some(ns) => ns.iter().map(|&n| Some(n)).collect(),
        None => vec![None],
    };
    let xis: Vec<Option<f64>> = match &spec.sweep_xi {
        Some(xs) => xs.iter().map(|&x| Some(x)).collect(),
        None => vec![None],
    };
    let mut cells = Vec::with_capacity(workers.len() * xis.len() * spec.mechanisms.len());
    for &n in &workers {
        for &xi in &xis {
            for &mechanism in &spec.mechanisms {
                cells.push(GridCell {
                    num_workers: n,
                    xi,
                    mechanism,
                });
            }
        }
    }
    cells
}

/// Typed, typo-rejecting view over one parsed table: every accessor records
/// the key it consumed, and [`SpecReader::finish`] fails on leftovers.
struct SpecReader<'a> {
    table: &'a TomlTable,
    path: &'static str,
    used: RefCell<BTreeSet<String>>,
}

impl<'a> SpecReader<'a> {
    fn new(table: &'a TomlTable, path: &'static str) -> Self {
        Self {
            table,
            path,
            used: RefCell::new(BTreeSet::new()),
        }
    }

    fn ctx(&self, key: &str) -> String {
        if self.path.is_empty() {
            format!("`{key}`")
        } else {
            format!("`{}.{key}`", self.path)
        }
    }

    fn entry(&self, key: &str) -> Result<Option<(&'a Value, usize)>, ScenarioError> {
        self.used.borrow_mut().insert(key.to_string());
        match self.table.get(key) {
            None => Ok(None),
            Some(Node::Value(e)) => Ok(Some((&e.value, e.line))),
            Some(Node::Table(t)) => Err(ScenarioError::at(
                t.line,
                format!("{} must be a value, not a table", self.ctx(key)),
            )),
        }
    }

    fn mismatch(&self, key: &str, expected: &str, v: &Value, line: usize) -> ScenarioError {
        ScenarioError::at(
            line,
            format!(
                "{}: expected {expected}, found {}",
                self.ctx(key),
                v.type_name()
            ),
        )
    }

    fn str_opt(&self, key: &str) -> Result<Option<(String, usize)>, ScenarioError> {
        match self.entry(key)? {
            None => Ok(None),
            Some((Value::Str(s), line)) => Ok(Some((s.clone(), line))),
            Some((v, line)) => Err(self.mismatch(key, "a string", v, line)),
        }
    }

    fn required_str(&self, key: &str) -> Result<(String, usize), ScenarioError> {
        self.str_opt(key)?.ok_or_else(|| {
            ScenarioError::at(
                self.table.line.max(1),
                format!("missing required key {}", self.ctx(key)),
            )
        })
    }

    /// A `usize` key that must be at least 1 when present — run shapes like
    /// round budgets, where 0 would only fail later inside an engine assert
    /// without file/line context.
    fn positive_usize_opt(&self, key: &str) -> Result<Option<usize>, ScenarioError> {
        match self.entry(key)? {
            None => Ok(None),
            Some((Value::Int(i), line)) => {
                if *i >= 1 {
                    Ok(Some(*i as usize))
                } else {
                    Err(ScenarioError::at(
                        line,
                        format!("{} must be at least 1, got {i}", self.ctx(key)),
                    ))
                }
            }
            Some((v, line)) => Err(self.mismatch(key, "an integer", v, line)),
        }
    }

    fn u64_opt(&self, key: &str) -> Result<Option<u64>, ScenarioError> {
        match self.entry(key)? {
            None => Ok(None),
            Some((Value::Int(i), line)) => u64::try_from(*i).map(Some).map_err(|_| {
                ScenarioError::at(
                    line,
                    format!("{} must be non-negative, got {i}", self.ctx(key)),
                )
            }),
            Some((v, line)) => Err(self.mismatch(key, "an integer", v, line)),
        }
    }

    fn f64_opt(&self, key: &str) -> Result<Option<f64>, ScenarioError> {
        match self.entry(key)? {
            None => Ok(None),
            Some((Value::Float(f), _)) => Ok(Some(*f)),
            Some((Value::Int(i), _)) => Ok(Some(*i as f64)),
            Some((v, line)) => Err(self.mismatch(key, "a number", v, line)),
        }
    }

    /// An `f64` key that must satisfy `check` when present; `expect`
    /// describes the requirement in the error message.
    fn f64_checked_opt(
        &self,
        key: &str,
        expect: &str,
        check: impl Fn(f64) -> bool,
    ) -> Result<Option<f64>, ScenarioError> {
        match self.entry(key)? {
            None => Ok(None),
            Some((v, line)) => {
                let x = match v {
                    Value::Float(f) => *f,
                    Value::Int(i) => *i as f64,
                    other => return Err(self.mismatch(key, "a number", other, line)),
                };
                if x.is_finite() && check(x) {
                    Ok(Some(x))
                } else {
                    Err(ScenarioError::at(
                        line,
                        format!("{} must be {expect}, got {x}", self.ctx(key)),
                    ))
                }
            }
        }
    }

    fn bool_opt(&self, key: &str) -> Result<Option<bool>, ScenarioError> {
        match self.entry(key)? {
            None => Ok(None),
            Some((Value::Bool(b), _)) => Ok(Some(*b)),
            Some((v, line)) => Err(self.mismatch(key, "a boolean", v, line)),
        }
    }

    fn f64_array_opt(&self, key: &str) -> Result<Option<(Vec<f64>, usize)>, ScenarioError> {
        match self.entry(key)? {
            None => Ok(None),
            Some((Value::Array(items), line)) => {
                let mut out = Vec::with_capacity(items.len());
                for v in items {
                    match v {
                        Value::Float(f) => out.push(*f),
                        Value::Int(i) => out.push(*i as f64),
                        other => {
                            return Err(self.mismatch(key, "an array of numbers", other, line))
                        }
                    }
                }
                Ok(Some((out, line)))
            }
            Some((v, line)) => Err(self.mismatch(key, "an array of numbers", v, line)),
        }
    }

    fn usize_array_opt(&self, key: &str) -> Result<Option<(Vec<usize>, usize)>, ScenarioError> {
        match self.entry(key)? {
            None => Ok(None),
            Some((Value::Array(items), line)) => {
                let mut out = Vec::with_capacity(items.len());
                for v in items {
                    match v {
                        Value::Int(i) if *i >= 0 => out.push(*i as usize),
                        other => {
                            return Err(self.mismatch(
                                key,
                                "an array of non-negative integers",
                                other,
                                line,
                            ))
                        }
                    }
                }
                Ok(Some((out, line)))
            }
            Some((v, line)) => {
                Err(self.mismatch(key, "an array of non-negative integers", v, line))
            }
        }
    }

    fn str_array_opt(&self, key: &str) -> Result<Option<(Vec<String>, usize)>, ScenarioError> {
        match self.entry(key)? {
            None => Ok(None),
            Some((Value::Array(items), line)) => {
                let mut out = Vec::with_capacity(items.len());
                for v in items {
                    match v {
                        Value::Str(s) => out.push(s.clone()),
                        other => {
                            return Err(self.mismatch(key, "an array of strings", other, line))
                        }
                    }
                }
                Ok(Some((out, line)))
            }
            Some((v, line)) => Err(self.mismatch(key, "an array of strings", v, line)),
        }
    }

    /// Fail on any key no accessor consumed — typos never silently default.
    fn finish(&self) -> Result<(), ScenarioError> {
        let used = self.used.borrow();
        let unknown: Vec<(String, usize)> = self
            .table
            .keys()
            .filter(|(k, _)| !used.contains(*k))
            .map(|(k, line)| (self.ctx(k), line))
            .collect();
        match unknown.first() {
            None => Ok(()),
            Some((_, line)) => {
                let names: Vec<&str> = unknown.iter().map(|(k, _)| k.as_str()).collect();
                Err(ScenarioError::at(
                    *line,
                    format!("unrecognised key(s): {}", names.join(", ")),
                ))
            }
        }
    }
}

/// Attach a registry/validation error to the line a key was written on.
fn at_line<T>(r: Result<T, ScenarioError>, line: usize) -> Result<T, ScenarioError> {
    r.map_err(|e| ScenarioError {
        line: e.line.or(Some(line)),
        ..e
    })
}

impl ScenarioSpec {
    /// Parse and validate a scenario document against the built-in registry.
    pub fn parse(src: &str) -> Result<Self, ScenarioError> {
        Self::parse_with(src, &Registry::builtin())
    }

    /// Parse and validate against a specific registry.
    pub fn parse_with(src: &str, registry: &Registry) -> Result<Self, ScenarioError> {
        let doc = toml::parse(src)?;
        let root = SpecReader::new(&doc, "");

        // [scenario] — identity and driver shape.
        let scenario_tbl = root.table_req("scenario")?;
        let scenario = SpecReader::new(scenario_tbl, "scenario");
        let (name, _) = scenario.required_str("name")?;
        let (kind_key, kind_line) = scenario.required_str("kind")?;
        let kind = ScenarioKind::from_key(&kind_key, kind_line)?;
        let (title, _) = scenario.required_str("title")?;
        let csv_prefix = scenario
            .str_opt("csv_prefix")?
            .map(|(s, _)| s)
            .unwrap_or_else(|| name.clone());
        scenario.finish()?;

        // [system] — the workload, resolved through the registry.
        let empty = TomlTable::default();
        let system_tbl = root.table_opt("system")?.unwrap_or(&empty);
        let system = SpecReader::new(system_tbl, "system");
        let mut base_config = match system.str_opt("workload")? {
            Some((key, line)) => at_line(registry.workload(&key), line)?,
            None => FlSystemConfig::mnist_lr(),
        };
        if let Some((key, line)) = system.str_opt("dataset")? {
            base_config.dataset = at_line(registry.dataset(&key), line)?;
        }
        if let Some(n) = system.positive_usize_opt("samples_per_class")? {
            base_config.dataset.samples_per_class = n;
        }
        if let Some(n) = system.positive_usize_opt("test_per_class")? {
            base_config.test_per_class = n;
        }
        if let Some((key, line)) = system.str_opt("model")? {
            base_config.model = at_line(registry.model(&key), line)?;
        }
        if let Some((key, line)) = system.str_opt("partitioner")? {
            base_config.partitioner = at_line(registry.partitioner(&key), line)?;
        }
        if let Some((key, line)) = system.str_opt("heterogeneity")? {
            base_config.heterogeneity = at_line(registry.heterogeneity(&key), line)?;
        }
        if let Some((key, line)) = system.str_opt("channel")? {
            base_config.wireless = at_line(registry.channel(&key), line)?;
        }
        if let Some(v) = system.f64_opt("noise_variance")? {
            base_config.wireless.noise_variance = v;
        }
        if let Some(v) = system.f64_opt("base_time_per_sample")? {
            base_config.base_time_per_sample = v;
        }
        if let Some(v) = system.f64_opt("learning_rate")? {
            base_config.sgd.learning_rate = v;
        }
        if let Some(n) = system.positive_usize_opt("batch_size")? {
            base_config.sgd.batch_size = n;
        }
        if let Some(n) = system.positive_usize_opt("local_epochs")? {
            base_config.sgd.local_epochs = n;
        }
        let num_workers = system.positive_usize_opt("num_workers")?;
        let system_seed = system.u64_opt("seed")?.unwrap_or(42);
        system.finish()?;
        if kind == ScenarioKind::Scalability {
            // The scalability driver sets the worker count per sweep cell and
            // recomputes shard sizes from `per_worker_samples`; accepting
            // these keys would silently discard them.
            for key in ["num_workers", "samples_per_class"] {
                if let Some(Node::Value(e)) = system_tbl.get(key) {
                    return Err(ScenarioError::at(
                        e.line,
                        format!(
                            "`system.{key}` does not apply to scalability scenarios \
                             (the sweep sets worker counts; use [sweep] num_workers / \
                             per_worker_samples)"
                        ),
                    ));
                }
            }
        }

        // [faults] — injected fault statistics (default: no faults, which
        // leaves the run byte-identical to a pre-faults build). A `preset`
        // resolves through the registry first; explicit keys then override
        // individual fields on top of it.
        let faults_tbl = root.table_opt("faults")?.unwrap_or(&empty);
        let faults = SpecReader::new(faults_tbl, "faults");
        if let Some((key, line)) = faults.str_opt("preset")? {
            base_config.faults = at_line(registry.fault_preset(&key), line)?;
        }
        if let Some(v) =
            faults.f64_checked_opt("dropout_rate", "a non-negative rate", |x| x >= 0.0)?
        {
            base_config.faults.dropout_rate = v;
        }
        if let Some(v) = faults.f64_checked_opt("mean_downtime", "positive", |x| x > 0.0)? {
            base_config.faults.mean_downtime = v;
        }
        if let Some(v) = faults.f64_checked_opt("straggler_fraction", "in [0, 1]", |x| {
            (0.0..=1.0).contains(&x)
        })? {
            base_config.faults.straggler_fraction = v;
        }
        if let Some(v) = faults.f64_checked_opt("straggler_slowdown", "at least 1", |x| x >= 1.0)? {
            base_config.faults.straggler_slowdown = v;
        }
        if let Some(v) =
            faults.f64_checked_opt("outage_rate", "a non-negative rate", |x| x >= 0.0)?
        {
            base_config.faults.outage_rate = v;
        }
        if let Some(v) = faults.f64_checked_opt("outage_duration", "positive", |x| x > 0.0)? {
            base_config.faults.outage_duration = v;
        }
        if let Some(v) = faults.f64_checked_opt("deadline", "positive", |x| x > 0.0)? {
            base_config.faults.deadline = Some(v);
        }
        if let Some(v) = faults.f64_checked_opt("horizon", "positive", |x| x > 0.0)? {
            base_config.faults.horizon = v;
        }
        // Injected test faults (1-based rounds) for watchdog / retry smoke
        // scenarios; see `FaultSpec::injected_fault`.
        if let Some(r) = faults.positive_usize_opt("inject_panic_round")? {
            base_config.faults.inject_panic_round = Some(r);
        }
        if let Some(r) = faults.positive_usize_opt("inject_hang_round")? {
            base_config.faults.inject_hang_round = Some(r);
        }
        faults.finish()?;
        // Cross-field constraints the engine would otherwise only catch as a
        // panic deep inside `FlSystemConfig::build`.
        if base_config.faults.dropout_rate > 0.0 && base_config.faults.mean_downtime <= 0.0 {
            return Err(ScenarioError::at(
                faults_tbl.line.max(1),
                "`faults.mean_downtime` must be set (positive) when \
                 `faults.dropout_rate` is"
                    .into(),
            ));
        }
        if base_config.faults.outage_rate > 0.0 && base_config.faults.outage_duration <= 0.0 {
            return Err(ScenarioError::at(
                faults_tbl.line.max(1),
                "`faults.outage_duration` must be set (positive) when \
                 `faults.outage_rate` is"
                    .into(),
            ));
        }

        // [run] — mechanisms, targets, seeds and budgets.
        let run_tbl = root.table_opt("run")?.unwrap_or(&empty);
        let run = SpecReader::new(run_tbl, "run");
        let mechanisms = match run.str_array_opt("mechanisms")? {
            Some((keys, line)) => {
                let mut out = Vec::with_capacity(keys.len());
                for key in &keys {
                    out.push(at_line(registry.mechanism(key), line)?);
                }
                out
            }
            None => Vec::new(),
        };
        let accuracy_targets = match run.f64_array_opt("accuracy_targets")? {
            Some((targets, line)) => {
                for &t in &targets {
                    if !(t > 0.0 && t <= 1.0) {
                        return Err(ScenarioError::at(
                            line,
                            format!("accuracy target {t} must lie in (0, 1]"),
                        ));
                    }
                }
                targets
            }
            None => Vec::new(),
        };
        let speedup_target = run.f64_opt("speedup_target")?;
        let energy_targets = match run.f64_array_opt("energy_targets")? {
            Some((targets, line)) => {
                for &t in &targets {
                    if !(t > 0.0 && t <= 1.0) {
                        return Err(ScenarioError::at(
                            line,
                            format!("energy target {t} must lie in (0, 1]"),
                        ));
                    }
                }
                if targets.is_empty() {
                    return Err(ScenarioError::at(
                        line,
                        "run.energy_targets must not be empty".into(),
                    ));
                }
                targets
            }
            None => Vec::new(),
        };
        let energy_label = run.str_opt("energy_label")?.map(|(s, _)| s);
        let rounds = run.positive_usize_opt("rounds")?;
        let eval_every = run.positive_usize_opt("eval_every")?;
        let max_virtual_time = run.f64_opt("max_virtual_time")?;
        let run_seed = run.u64_opt("seed")?.unwrap_or(4242);
        let num_seeds = run.positive_usize_opt("seeds")?.unwrap_or(1);
        let vary_system = run.bool_opt("system_seeds")?.unwrap_or(false);
        run.finish()?;

        // [sweep] — the cross-product axes.
        let sweep_tbl = root.table_opt("sweep")?.unwrap_or(&empty);
        let sweep = SpecReader::new(sweep_tbl, "sweep");
        let sweep_xi = match sweep.f64_array_opt("xi")? {
            Some((xis, line)) => {
                for &xi in &xis {
                    if !(0.0..=1.0).contains(&xi) {
                        return Err(ScenarioError::at(
                            line,
                            format!("sweep xi value {xi} must lie in [0, 1]"),
                        ));
                    }
                }
                if xis.is_empty() {
                    return Err(ScenarioError::at(line, "sweep.xi must not be empty".into()));
                }
                Some(xis)
            }
            None => None,
        };
        let sweep_num_workers = match sweep.usize_array_opt("num_workers")? {
            Some((ns, line)) => {
                if ns.is_empty() || ns.contains(&0) {
                    return Err(ScenarioError::at(
                        line,
                        "sweep.num_workers must be a non-empty list of positive counts".into(),
                    ));
                }
                Some(ns)
            }
            None => None,
        };
        let per_worker_samples = sweep
            .positive_usize_opt("per_worker_samples")?
            .unwrap_or(30);
        sweep.finish()?;

        // [limits] — per-cell retry/timeout policy. Optional: `None` keeps
        // the historical run-to-completion behaviour byte-for-byte.
        let limits = match root.table_opt("limits")? {
            None => None,
            Some(limits_tbl) => {
                let lim = SpecReader::new(limits_tbl, "limits");
                let cell_timeout_secs =
                    lim.f64_checked_opt("cell_timeout_secs", "positive", |x| x > 0.0)?;
                let max_retries = lim.u64_opt("max_retries")?.map(|n| n as usize);
                let retry_backoff =
                    lim.f64_checked_opt("retry_backoff", "non-negative", |x| x >= 0.0)?;
                lim.finish()?;
                Some(RunLimits {
                    cell_timeout_secs,
                    max_retries,
                    retry_backoff,
                })
            }
        };

        // [telemetry] — observability sinks. Never affects results, CSV
        // bytes or runstore keys (see `canonical_spec_form`).
        let telemetry = match root.table_opt("telemetry")? {
            None => TelemetrySettings::default(),
            Some(tel_tbl) => {
                let tel = SpecReader::new(tel_tbl, "telemetry");
                let dir = tel.str_opt("dir")?.map(|(s, _)| s);
                let progress = match tel.str_opt("progress")? {
                    None => None,
                    Some((s, line)) => {
                        if matches!(s.as_str(), "auto" | "force" | "off") {
                            Some(s)
                        } else {
                            return Err(ScenarioError::at(
                                line,
                                format!(
                                    "telemetry.progress must be \"auto\", \"force\" or \
                                     \"off\", got \"{s}\""
                                ),
                            ));
                        }
                    }
                };
                tel.finish()?;
                TelemetrySettings { dir, progress }
            }
        };
        root.finish()?;

        let spec = Self {
            name,
            kind,
            title,
            csv_prefix,
            base_config,
            num_workers,
            system_seed,
            mechanisms,
            accuracy_targets,
            speedup_target,
            energy_targets,
            energy_label,
            rounds,
            eval_every,
            max_virtual_time,
            run_seed,
            num_seeds,
            vary_system,
            sweep_xi,
            sweep_num_workers,
            per_worker_samples,
            limits,
            telemetry,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Cross-key validation per scenario kind.
    fn validate(&self) -> Result<(), ScenarioError> {
        let need = |ok: bool, msg: &str| {
            if ok {
                Ok(())
            } else {
                Err(ScenarioError::new(format!("[{}] {msg}", self.name)))
            }
        };
        if self.num_seeds == 0 {
            return Err(ScenarioError::new(
                "run.seeds must be at least 1".to_string(),
            ));
        }
        if !self.energy_targets.is_empty() && self.kind != ScenarioKind::TimeAccuracy {
            return Err(ScenarioError::new(format!(
                "[{}] run.energy_targets applies only to time_accuracy scenarios",
                self.name
            )));
        }
        if self.energy_label.is_some() && self.energy_targets.is_empty() {
            return Err(ScenarioError::new(format!(
                "[{}] run.energy_label requires run.energy_targets",
                self.name
            )));
        }
        match self.kind {
            ScenarioKind::TimeAccuracy => {
                need(
                    !self.mechanisms.is_empty(),
                    "time_accuracy scenarios need run.mechanisms",
                )?;
                need(
                    !self.accuracy_targets.is_empty(),
                    "time_accuracy scenarios need run.accuracy_targets",
                )?;
                need(
                    self.sweep_xi.is_none() && self.sweep_num_workers.is_none(),
                    "time_accuracy scenarios take no [sweep] axes (use kind = \"grid\")",
                )?;
            }
            ScenarioKind::XiSweep => {
                need(
                    self.mechanisms.is_empty(),
                    "xi_sweep scenarios sweep Air-FedGA's xi; run.mechanisms does not apply",
                )?;
                need(
                    !self.accuracy_targets.is_empty(),
                    "xi_sweep scenarios need run.accuracy_targets",
                )?;
                need(
                    self.sweep_num_workers.is_none(),
                    "xi_sweep scenarios take no num_workers axis (use kind = \"grid\")",
                )?;
                need(
                    self.limits.is_none(),
                    "xi_sweep scenarios run inline and take no [limits] table",
                )?;
            }
            ScenarioKind::Scalability => {
                need(
                    !self.mechanisms.is_empty(),
                    "scalability scenarios need run.mechanisms",
                )?;
                need(
                    self.accuracy_targets.len() == 1,
                    "scalability scenarios need exactly one accuracy target \
                     (the total-time panel)",
                )?;
                need(
                    self.sweep_xi.is_none(),
                    "scalability scenarios take no xi axis (use kind = \"grid\")",
                )?;
                need(
                    self.limits.is_none(),
                    "scalability scenarios run inline and take no [limits] table",
                )?;
            }
            ScenarioKind::Grid => {
                need(
                    !self.mechanisms.is_empty(),
                    "grid scenarios need run.mechanisms",
                )?;
                need(
                    !self.accuracy_targets.is_empty(),
                    "grid scenarios need run.accuracy_targets",
                )?;
                need(
                    self.sweep_xi.is_some() || self.sweep_num_workers.is_some(),
                    "grid scenarios need at least one [sweep] axis",
                )?;
            }
        }
        Ok(())
    }
}

impl<'a> SpecReader<'a> {
    fn table_opt(&self, key: &str) -> Result<Option<&'a TomlTable>, ScenarioError> {
        self.used.borrow_mut().insert(key.to_string());
        match self.table.get(key) {
            None => Ok(None),
            Some(Node::Table(t)) => Ok(Some(t)),
            Some(Node::Value(e)) => Err(ScenarioError::at(
                e.line,
                format!("{} must be a table (`[{key}]` header)", self.ctx(key)),
            )),
        }
    }

    fn table_req(&self, key: &str) -> Result<&'a TomlTable, ScenarioError> {
        self.table_opt(key)?
            .ok_or_else(|| ScenarioError::new(format!("missing required table `[{key}]`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL_GRID: &str = r#"
[scenario]
name = "tiny"
kind = "grid"
title = "Tiny grid"

[system]
workload = "mnist_lr_quick"

[run]
mechanisms = ["fedavg", "air-fedga"]
accuracy_targets = [0.5]
rounds = 4
eval_every = 2

[sweep]
xi = [0.1, 0.3]
num_workers = [5, 8]
"#;

    #[test]
    fn minimal_grid_spec_parses_and_expands_in_documented_order() {
        let spec = ScenarioSpec::parse(MINIMAL_GRID).unwrap();
        assert_eq!(spec.kind, ScenarioKind::Grid);
        assert_eq!(spec.csv_prefix, "tiny");
        assert_eq!(spec.num_seeds, 1);
        assert_eq!(spec.run_seed, 4242);
        assert_eq!(spec.system_seed, 42);
        let cells = expand_grid(&spec);
        assert_eq!(cells.len(), 8);
        // num_workers outermost, xi next, mechanisms innermost.
        assert_eq!(
            cells[0],
            GridCell {
                num_workers: Some(5),
                xi: Some(0.1),
                mechanism: MechanismChoice::FedAvg
            }
        );
        assert_eq!(cells[1].mechanism, MechanismChoice::AirFedGa);
        assert_eq!(cells[2].xi, Some(0.3));
        assert_eq!(cells[4].num_workers, Some(8));
        assert_eq!(
            cells[7],
            GridCell {
                num_workers: Some(8),
                xi: Some(0.3),
                mechanism: MechanismChoice::AirFedGa
            }
        );
    }

    #[test]
    fn absent_axes_expand_to_a_single_none_cell() {
        let spec = ScenarioSpec::parse(
            r#"
[scenario]
name = "one-axis"
kind = "grid"
title = "t"
[run]
mechanisms = ["air-fedga"]
accuracy_targets = [0.5]
[sweep]
xi = [0.2, 0.4]
"#,
        )
        .unwrap();
        let cells = expand_grid(&spec);
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| c.num_workers.is_none()));
        assert_eq!(cells[0].xi, Some(0.2));
    }

    #[test]
    fn unknown_keys_fail_with_their_line() {
        let err = ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\nkind = \"grid\"\ntitle = \"t\"\ntypo_key = 1\n",
        )
        .unwrap_err();
        assert_eq!(err.line, Some(5));
        assert!(err.msg.contains("unrecognised"), "{}", err.msg);
        assert!(err.msg.contains("scenario.typo_key"), "{}", err.msg);
    }

    #[test]
    fn type_mismatches_carry_context_and_line() {
        let err = ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\nkind = \"grid\"\ntitle = \"t\"\n[run]\nseeds = \"three\"\n",
        )
        .unwrap_err();
        assert_eq!(err.line, Some(6));
        assert!(err.msg.contains("`run.seeds`"), "{}", err.msg);
        assert!(
            err.msg.contains("expected an integer, found string"),
            "{}",
            err.msg
        );
    }

    #[test]
    fn registry_errors_point_at_the_offending_line() {
        let err = ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\nkind = \"time_accuracy\"\ntitle = \"t\"\n\
             [system]\nworkload = \"bogus\"\n",
        )
        .unwrap_err();
        assert_eq!(err.line, Some(6));
        assert!(err.msg.contains("unknown workload"), "{}", err.msg);
    }

    #[test]
    fn kind_specific_validation_fires() {
        // time_accuracy with a sweep axis.
        let err = ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\nkind = \"time_accuracy\"\ntitle = \"t\"\n\
             [run]\nmechanisms = [\"fedavg\"]\naccuracy_targets = [0.5]\n\
             [sweep]\nxi = [0.1]\n",
        )
        .unwrap_err();
        assert!(err.msg.contains("no [sweep] axes"), "{}", err.msg);
        // xi_sweep with mechanisms.
        let err = ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\nkind = \"xi_sweep\"\ntitle = \"t\"\n\
             [run]\nmechanisms = [\"fedavg\"]\naccuracy_targets = [0.5]\n",
        )
        .unwrap_err();
        assert!(err.msg.contains("does not apply"), "{}", err.msg);
        // grid without axes.
        let err = ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\nkind = \"grid\"\ntitle = \"t\"\n\
             [run]\nmechanisms = [\"fedavg\"]\naccuracy_targets = [0.5]\n",
        )
        .unwrap_err();
        assert!(err.msg.contains("at least one [sweep] axis"), "{}", err.msg);
        // out-of-range values.
        let err = ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\nkind = \"grid\"\ntitle = \"t\"\n\
             [run]\nmechanisms = [\"air-fedga\"]\naccuracy_targets = [1.5]\n\
             [sweep]\nxi = [0.1]\n",
        )
        .unwrap_err();
        assert!(err.msg.contains("(0, 1]"), "{}", err.msg);
    }

    #[test]
    fn zero_run_shapes_fail_at_parse_time_with_a_line() {
        for (key, line) in [("rounds = 0", 6), ("eval_every = 0", 6), ("seeds = 0", 6)] {
            let err = ScenarioSpec::parse(&format!(
                "[scenario]\nname = \"x\"\nkind = \"time_accuracy\"\ntitle = \"t\"\n\
                 [run]\n{key}\nmechanisms = [\"fedavg\"]\naccuracy_targets = [0.5]\n"
            ))
            .unwrap_err();
            assert_eq!(err.line, Some(line), "{key}: {}", err.msg);
            assert!(err.msg.contains("at least 1"), "{key}: {}", err.msg);
        }
        let err = ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\nkind = \"time_accuracy\"\ntitle = \"t\"\n\
             [system]\nnum_workers = 0\n\
             [run]\nmechanisms = [\"fedavg\"]\naccuracy_targets = [0.5]\n",
        )
        .unwrap_err();
        assert_eq!(err.line, Some(6));
    }

    #[test]
    fn scalability_rejects_system_keys_the_sweep_controls() {
        for key in ["num_workers = 50", "samples_per_class = 100"] {
            let err = ScenarioSpec::parse(&format!(
                "[scenario]\nname = \"x\"\nkind = \"scalability\"\ntitle = \"t\"\n\
                 [system]\n{key}\n\
                 [run]\nmechanisms = [\"fedavg\"]\naccuracy_targets = [0.8]\n"
            ))
            .unwrap_err();
            assert_eq!(err.line, Some(6), "{key}: {}", err.msg);
            assert!(
                err.msg.contains("does not apply to scalability"),
                "{key}: {}",
                err.msg
            );
        }
    }

    #[test]
    fn system_overrides_reach_the_config() {
        let spec = ScenarioSpec::parse(
            r#"
[scenario]
name = "override"
kind = "time_accuracy"
title = "t"

[system]
workload = "cifar_cnn"
partitioner = "dirichlet:0.3"
heterogeneity = "uniform:2:4"
channel = "noisy"
num_workers = 17
learning_rate = 0.05
batch_size = 8
seed = 7

[run]
mechanisms = ["fedavg", "tifl", "dynamic", "air-fedavg", "air-fedga"]
accuracy_targets = [0.5, 0.7]
seed = 999
seeds = 2
system_seeds = true
"#,
        )
        .unwrap();
        assert_eq!(spec.base_config.model, fedml::model::ModelKind::CnnCifar);
        assert_eq!(
            spec.base_config.partitioner,
            fedml::partition::Partitioner::Dirichlet { alpha: 0.3 }
        );
        assert_eq!(spec.base_config.wireless.noise_variance, 1.0e-3);
        assert_eq!(spec.base_config.sgd.learning_rate, 0.05);
        assert_eq!(spec.base_config.sgd.batch_size, 8);
        assert_eq!(spec.num_workers, Some(17));
        assert_eq!(spec.system_seed, 7);
        assert_eq!(spec.run_seed, 999);
        assert_eq!(spec.num_seeds, 2);
        assert!(spec.vary_system);
        assert_eq!(spec.mechanisms.len(), 5);
    }

    const FAULTS_HEADER: &str =
        "[scenario]\nname = \"f\"\nkind = \"time_accuracy\"\ntitle = \"t\"\n\
         [run]\nmechanisms = [\"air-fedga\"]\naccuracy_targets = [0.5]\n";

    #[test]
    fn faults_table_reaches_the_config_with_preset_and_overrides() {
        // No [faults] table: the zero-fault spec, so runs stay byte-identical.
        let spec = ScenarioSpec::parse(FAULTS_HEADER).unwrap();
        assert!(spec.base_config.faults.is_none());

        // Preset plus explicit overrides on top of it.
        let spec = ScenarioSpec::parse(&format!(
            "{FAULTS_HEADER}[faults]\npreset = \"churn:0.002\"\nmean_downtime = 45\n\
             straggler_fraction = 0.3\nstraggler_slowdown = 3.0\ndeadline = 400\n"
        ))
        .unwrap();
        let f = &spec.base_config.faults;
        assert_eq!(f.dropout_rate, 0.002);
        assert_eq!(f.mean_downtime, 45.0);
        assert_eq!(f.straggler_fraction, 0.3);
        assert_eq!(f.straggler_slowdown, 3.0);
        assert_eq!(f.deadline, Some(400.0));
        f.validate();
    }

    #[test]
    fn faults_table_rejects_typos_and_bad_values_with_lines() {
        // A typo'd key fails like every other table.
        let err =
            ScenarioSpec::parse(&format!("{FAULTS_HEADER}[faults]\ndropout = 0.1\n")).unwrap_err();
        assert!(err.msg.contains("faults.dropout"), "{}", err.msg);

        // Out-of-range values carry the key's line.
        let err = ScenarioSpec::parse(&format!(
            "{FAULTS_HEADER}[faults]\nstraggler_fraction = 1.5\n"
        ))
        .unwrap_err();
        assert_eq!(err.line, Some(9));
        assert!(err.msg.contains("in [0, 1]"), "{}", err.msg);
        let err = ScenarioSpec::parse(&format!("{FAULTS_HEADER}[faults]\npreset = \"blackout\"\n"))
            .unwrap_err();
        assert_eq!(err.line, Some(9));
        assert!(err.msg.contains("unknown fault preset"), "{}", err.msg);

        // Cross-field constraints fail at parse time, not as engine panics.
        let err = ScenarioSpec::parse(&format!("{FAULTS_HEADER}[faults]\ndropout_rate = 0.01\n"))
            .unwrap_err();
        assert!(err.msg.contains("mean_downtime"), "{}", err.msg);
        let err = ScenarioSpec::parse(&format!("{FAULTS_HEADER}[faults]\noutage_rate = 0.01\n"))
            .unwrap_err();
        assert!(err.msg.contains("outage_duration"), "{}", err.msg);
    }

    #[test]
    fn limits_table_parses_with_partial_keys_and_defaults_to_none() {
        // No [limits] table at all → None, the historical behaviour.
        assert_eq!(ScenarioSpec::parse(MINIMAL_GRID).unwrap().limits, None);

        let spec = ScenarioSpec::parse(&format!(
            "{MINIMAL_GRID}\n[limits]\ncell_timeout_secs = 30\nmax_retries = 2\n\
             retry_backoff = 0.5\n"
        ))
        .unwrap();
        assert_eq!(
            spec.limits,
            Some(RunLimits {
                cell_timeout_secs: Some(30.0),
                max_retries: Some(2),
                retry_backoff: Some(0.5),
            })
        );

        // Partial tables leave the unset keys to the harness defaults.
        let spec =
            ScenarioSpec::parse(&format!("{MINIMAL_GRID}\n[limits]\nmax_retries = 0\n")).unwrap();
        assert_eq!(
            spec.limits,
            Some(RunLimits {
                cell_timeout_secs: None,
                max_retries: Some(0),
                retry_backoff: None,
            })
        );
    }

    #[test]
    fn limits_table_rejects_bad_values_and_typos() {
        let err = ScenarioSpec::parse(&format!(
            "{MINIMAL_GRID}\n[limits]\ncell_timeout_secs = 0\n"
        ))
        .unwrap_err();
        assert!(err.msg.contains("positive"), "{}", err.msg);
        let err = ScenarioSpec::parse(&format!("{MINIMAL_GRID}\n[limits]\nretry_backoff = -1\n"))
            .unwrap_err();
        assert!(err.msg.contains("non-negative"), "{}", err.msg);
        let err =
            ScenarioSpec::parse(&format!("{MINIMAL_GRID}\n[limits]\ntimeout = 5\n")).unwrap_err();
        assert!(err.msg.contains("limits.timeout"), "{}", err.msg);
    }

    #[test]
    fn limits_table_is_rejected_for_inline_kinds() {
        let src = r#"
[scenario]
name = "tiny_xi"
kind = "xi_sweep"
title = "Tiny xi sweep"

[system]
workload = "mnist_lr_quick"

[run]
accuracy_targets = [0.5]
rounds = 4
eval_every = 2

[sweep]
xi = [0.1]

[limits]
max_retries = 0
"#;
        let err = ScenarioSpec::parse(src).unwrap_err();
        assert!(err.msg.contains("no [limits] table"), "{}", err.msg);
    }

    #[test]
    fn injected_fault_rounds_parse_and_reject_zero() {
        let spec = ScenarioSpec::parse(&format!(
            "{FAULTS_HEADER}[faults]\ninject_panic_round = 3\ninject_hang_round = 5\n"
        ))
        .unwrap();
        assert_eq!(spec.base_config.faults.inject_panic_round, Some(3));
        assert_eq!(spec.base_config.faults.inject_hang_round, Some(5));

        let err = ScenarioSpec::parse(&format!(
            "{FAULTS_HEADER}[faults]\ninject_panic_round = 0\n"
        ))
        .unwrap_err();
        assert!(err.msg.contains("at least 1"), "{}", err.msg);
    }
}
