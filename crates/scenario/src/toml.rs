//! A self-contained parser for the TOML subset scenario files use.
//!
//! The build container has no crates.io access, so — like the `serde` /
//! `criterion` stand-ins under `crates/compat` — this is a small hand-rolled
//! implementation of exactly the slice of TOML the scenario format needs:
//!
//! * `[table]` / `[table.sub]` headers and dotted keys (`sweep.xi = [...]`),
//! * basic strings (`"..."` with `\"`, `\\`, `\n`, `\t`, `\r` escapes),
//! * integers and floats (with `_` separators), booleans,
//! * single-line arrays (`[1, 2, 3]`, trailing comma allowed, nestable),
//! * `#` comments (full-line and trailing).
//!
//! Not supported (rejected with an error, never silently misread): multi-line
//! strings and arrays, literal `'...'` strings, inline `{...}` tables,
//! `[[array-of-tables]]`, dates/times. Every error carries the 1-based line
//! number it was detected on, and duplicate keys/tables are hard errors —
//! a spec that parses is unambiguous.

use crate::ScenarioError;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic (double-quoted) string.
    Str(String),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A (possibly nested) array.
    Array(Vec<Value>),
}

impl Value {
    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// A value plus the line it was written on (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The parsed value.
    pub value: Value,
    /// 1-based source line of the `key = value` assignment.
    pub line: usize,
}

/// One node of the document tree: a leaf value or a nested table.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// `key = value`.
    Value(Entry),
    /// `[table]` (or a table created implicitly by a dotted path).
    Table(TomlTable),
}

/// An insertion-ordered table of key → node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TomlTable {
    /// 1-based line the table first appeared on (0 for the root).
    pub line: usize,
    /// Whether the table was opened by an explicit `[header]` (duplicate
    /// explicit headers are rejected; implicit parents may be opened later).
    explicit: bool,
    entries: Vec<(String, Node)>,
}

impl TomlTable {
    /// Look up a direct child.
    pub fn get(&self, key: &str) -> Option<&Node> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, n)| n)
    }

    /// The table's keys with the line each child was defined on, in
    /// insertion order.
    pub fn keys(&self) -> impl Iterator<Item = (&str, usize)> {
        self.entries.iter().map(|(k, n)| {
            let line = match n {
                Node::Value(e) => e.line,
                Node::Table(t) => t.line,
            };
            (k.as_str(), line)
        })
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn get_mut(&mut self, key: &str) -> Option<&mut Node> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, n)| n)
    }

    /// Walk (creating as needed) the table at `path`. `explicit` marks the
    /// final segment as opened by a `[header]`.
    fn ensure_table(
        &mut self,
        path: &[String],
        line: usize,
        explicit: bool,
    ) -> Result<&mut TomlTable, ScenarioError> {
        let mut cur = self;
        for (depth, seg) in path.iter().enumerate() {
            let last = depth + 1 == path.len();
            let created = cur.get(seg).is_none();
            if created {
                cur.entries.push((
                    seg.clone(),
                    Node::Table(TomlTable {
                        line,
                        explicit: explicit && last,
                        entries: Vec::new(),
                    }),
                ));
            }
            let node = cur.get_mut(seg).expect("just ensured");
            cur = match node {
                Node::Table(t) => {
                    if last && explicit && !created {
                        if t.explicit {
                            return Err(ScenarioError::at(
                                line,
                                format!(
                                    "duplicate table header `[{}]` (first defined at line {})",
                                    path.join("."),
                                    t.line
                                ),
                            ));
                        }
                        t.explicit = true;
                    }
                    t
                }
                Node::Value(e) => {
                    return Err(ScenarioError::at(
                        line,
                        format!(
                            "`{seg}` is already a value (line {}), cannot reuse it as a table",
                            e.line
                        ),
                    ));
                }
            };
        }
        Ok(cur)
    }

    fn insert_value(&mut self, key: &str, value: Value, line: usize) -> Result<(), ScenarioError> {
        if let Some(existing) = self.get(key) {
            let prev = match existing {
                Node::Value(e) => e.line,
                Node::Table(t) => t.line,
            };
            return Err(ScenarioError::at(
                line,
                format!("duplicate key `{key}` (first defined at line {prev})"),
            ));
        }
        self.entries
            .push((key.to_string(), Node::Value(Entry { value, line })));
        Ok(())
    }
}

/// Parse a scenario document into its root table.
pub fn parse(src: &str) -> Result<TomlTable, ScenarioError> {
    let mut root = TomlTable::default();
    let mut current_path: Vec<String> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            if rest.starts_with('[') {
                return Err(ScenarioError::at(
                    line_no,
                    "arrays of tables (`[[...]]`) are not part of the scenario TOML subset"
                        .to_string(),
                ));
            }
            let close = rest.find(']').ok_or_else(|| {
                ScenarioError::at(line_no, "unclosed table header (missing `]`)".to_string())
            })?;
            let after = rest[close + 1..].trim();
            if !after.is_empty() && !after.starts_with('#') {
                return Err(ScenarioError::at(
                    line_no,
                    format!("unexpected characters after table header: `{after}`"),
                ));
            }
            let path = parse_dotted_key(rest[..close].trim(), line_no)?;
            root.ensure_table(&path, line_no, true)?;
            current_path = path;
            continue;
        }
        let eq = line.find('=').ok_or_else(|| {
            ScenarioError::at(
                line_no,
                format!("expected `key = value` or `[table]`, found `{line}`"),
            )
        })?;
        let key_path = parse_dotted_key(line[..eq].trim(), line_no)?;
        let mut cursor = Cursor::new(&line[eq + 1..], line_no);
        let value = cursor.parse_value()?;
        cursor.expect_end()?;
        let (leaf, parents) = key_path.split_last().expect("key path is non-empty");
        let mut full_parent = current_path.clone();
        full_parent.extend(parents.iter().cloned());
        let table = root.ensure_table(&full_parent, line_no, false)?;
        table.insert_value(leaf, value, line_no)?;
    }
    Ok(root)
}

/// Split a `a.b.c` dotted key into validated bare-key segments.
fn parse_dotted_key(s: &str, line: usize) -> Result<Vec<String>, ScenarioError> {
    if s.is_empty() {
        return Err(ScenarioError::at(line, "empty key".to_string()));
    }
    s.split('.')
        .map(|seg| {
            let seg = seg.trim();
            let valid = !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
            if valid {
                Ok(seg.to_string())
            } else {
                Err(ScenarioError::at(
                    line,
                    format!(
                        "invalid key segment `{seg}` in `{s}` \
                         (bare keys: letters, digits, `_`, `-`)"
                    ),
                ))
            }
        })
        .collect()
}

/// Character cursor over the value part of one line.
struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    src: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str, line: usize) -> Self {
        Self {
            chars: s.chars().collect(),
            pos: 0,
            line,
            src: s,
        }
    }

    fn err(&self, msg: String) -> ScenarioError {
        ScenarioError::at(self.line, msg)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.pos += 1;
        }
    }

    /// After the top-level value: only whitespace or a trailing comment may
    /// remain.
    fn expect_end(&mut self) -> Result<(), ScenarioError> {
        self.skip_ws();
        match self.peek() {
            None | Some('#') => Ok(()),
            Some(_) => Err(self.err(format!(
                "unexpected trailing characters after value: `{}`",
                self.chars[self.pos..].iter().collect::<String>().trim()
            ))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, ScenarioError> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("missing value after `=`".to_string())),
            Some('"') => self.parse_string(),
            Some('[') => self.parse_array(),
            Some('\'') => Err(self.err(
                "literal strings (`'...'`) are not part of the scenario TOML subset; \
                 use a double-quoted string"
                    .to_string(),
            )),
            Some('{') => Err(self.err(
                "inline tables (`{...}`) are not part of the scenario TOML subset; \
                 use a `[table]` header"
                    .to_string(),
            )),
            Some(_) => self.parse_scalar_token(),
        }
    }

    fn parse_string(&mut self) -> Result<Value, ScenarioError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => {
                    return Err(self.err(format!("unterminated string in `{}`", self.src.trim())))
                }
                Some('"') => return Ok(Value::Str(out)),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some(c) => {
                        return Err(self.err(format!(
                            "unsupported string escape `\\{c}` \
                             (supported: \\\" \\\\ \\n \\t \\r)"
                        )))
                    }
                    None => return Err(self.err("unterminated string escape".to_string())),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ScenarioError> {
        self.bump(); // '['
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => {
                    return Err(self.err(
                        "unterminated array (scenario arrays must fit on one line)".to_string(),
                    ))
                }
                Some(']') => {
                    self.bump();
                    return Ok(Value::Array(items));
                }
                _ => {}
            }
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {}
                None => {
                    return Err(self.err(
                        "unterminated array (scenario arrays must fit on one line)".to_string(),
                    ))
                }
                Some(c) => {
                    return Err(self.err(format!("expected `,` or `]` in array, found `{c}`")))
                }
            }
        }
    }

    /// Bare scalar: boolean, integer or float.
    fn parse_scalar_token(&mut self) -> Result<Value, ScenarioError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == ',' || c == ']' || c == '#' || c == ' ' || c == '\t' {
                break;
            }
            self.pos += 1;
        }
        let token: String = self.chars[start..self.pos].iter().collect();
        match token.as_str() {
            "true" => return Ok(Value::Bool(true)),
            "false" => return Ok(Value::Bool(false)),
            _ => {}
        }
        let numeric = token.replace('_', "");
        let looks_float = numeric.contains(['.', 'e', 'E'])
            || matches!(numeric.as_str(), "inf" | "+inf" | "-inf" | "nan");
        if looks_float {
            if let Ok(f) = numeric.parse::<f64>() {
                return Ok(Value::Float(f));
            }
        } else if let Ok(i) = numeric.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        Err(self.err(format!(
            "invalid value `{token}` (strings must be double-quoted; \
             numbers and booleans are the only bare scalars)"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf<'t>(t: &'t TomlTable, path: &[&str]) -> &'t Value {
        let mut cur = t;
        for (i, seg) in path.iter().enumerate() {
            match cur.get(seg) {
                Some(Node::Table(t)) => cur = t,
                Some(Node::Value(e)) if i + 1 == path.len() => return &e.value,
                other => panic!("path {path:?} broke at `{seg}`: {other:?}"),
            }
        }
        panic!("path {path:?} names a table, not a value");
    }

    #[test]
    fn parses_tables_keys_and_scalar_types() {
        let doc = parse(concat!(
            "# a scenario\n",
            "top = \"level\"\n",
            "[scenario]\n",
            "name = \"fig3\"          # trailing comment\n",
            "seeds = 3\n",
            "xi = 0.3\n",
            "big = 1_000_000\n",
            "neg = -2.5e-3\n",
            "on = true\n",
            "off = false\n",
            "[system.sgd]\n",
            "batch = 16\n",
        ))
        .unwrap();
        assert_eq!(leaf(&doc, &["top"]), &Value::Str("level".to_string()));
        assert_eq!(
            leaf(&doc, &["scenario", "name"]),
            &Value::Str("fig3".to_string())
        );
        assert_eq!(leaf(&doc, &["scenario", "seeds"]), &Value::Int(3));
        assert_eq!(leaf(&doc, &["scenario", "xi"]), &Value::Float(0.3));
        assert_eq!(leaf(&doc, &["scenario", "big"]), &Value::Int(1_000_000));
        assert_eq!(leaf(&doc, &["scenario", "neg"]), &Value::Float(-2.5e-3));
        assert_eq!(leaf(&doc, &["scenario", "on"]), &Value::Bool(true));
        assert_eq!(leaf(&doc, &["scenario", "off"]), &Value::Bool(false));
        assert_eq!(leaf(&doc, &["system", "sgd", "batch"]), &Value::Int(16));
    }

    #[test]
    fn parses_dotted_keys_and_arrays() {
        let doc = parse(concat!(
            "[sweep]\n",
            "xi = [0.1, 0.3, 1.0,]\n",
            "num_workers = [10, 20]\n",
            "empty = []\n",
            "nested = [[1, 2], [3]]\n",
            "[run]\n",
            "sub.key = \"dotted\"\n",
        ))
        .unwrap();
        assert_eq!(
            leaf(&doc, &["sweep", "xi"]),
            &Value::Array(vec![
                Value::Float(0.1),
                Value::Float(0.3),
                Value::Float(1.0)
            ])
        );
        assert_eq!(
            leaf(&doc, &["sweep", "num_workers"]),
            &Value::Array(vec![Value::Int(10), Value::Int(20)])
        );
        assert_eq!(leaf(&doc, &["sweep", "empty"]), &Value::Array(vec![]));
        assert_eq!(
            leaf(&doc, &["sweep", "nested"]),
            &Value::Array(vec![
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
                Value::Array(vec![Value::Int(3)]),
            ])
        );
        assert_eq!(
            leaf(&doc, &["run", "sub", "key"]),
            &Value::Str("dotted".to_string())
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = parse("s = \"a \\\"b\\\" \\n\\t\\\\ c\"\n").unwrap();
        assert_eq!(
            leaf(&doc, &["s"]),
            &Value::Str("a \"b\" \n\t\\ c".to_string())
        );
    }

    #[test]
    fn duplicate_keys_are_rejected_with_both_lines() {
        let err = parse("a = 1\nb = 2\na = 3\n").unwrap_err();
        assert_eq!(err.line, Some(3));
        assert!(err.msg.contains("duplicate key `a`"), "{}", err.msg);
        assert!(err.msg.contains("line 1"), "{}", err.msg);
    }

    #[test]
    fn duplicate_table_headers_are_rejected() {
        let err = parse("[run]\na = 1\n[run]\nb = 2\n").unwrap_err();
        assert_eq!(err.line, Some(3));
        assert!(err.msg.contains("duplicate table header"), "{}", err.msg);
        // …but an implicit parent may be opened explicitly later.
        let ok = parse("[a.b]\nx = 1\n[a]\ny = 2\n").unwrap();
        assert_eq!(leaf(&ok, &["a", "y"]), &Value::Int(2));
    }

    #[test]
    fn key_value_table_collisions_are_rejected() {
        let err = parse("a = 1\n[a]\nb = 2\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.msg.contains("already a value"), "{}", err.msg);
        // A table header under an existing value collides too.
        let err = parse("[a]\nb = 1\n[a.b]\nc = 2\n").unwrap_err();
        assert_eq!(err.line, Some(3));
        assert!(err.msg.contains("already a value"), "{}", err.msg);
        // …while a dotted key inside another table is a different path.
        assert!(parse("[a]\nb = 1\n[c]\na.b = 2\n").is_ok());
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        for (src, line, needle) in [
            ("a = \n", 1, "missing value"),
            ("x = 1\ny 2\n", 2, "expected `key = value`"),
            ("a = \"unterminated\n", 1, "unterminated string"),
            ("a = [1, 2\n", 1, "unterminated array"),
            ("a = quick\n", 1, "double-quoted"),
            ("a = 1 2\n", 1, "trailing characters"),
            ("a = 'literal'\n", 1, "literal strings"),
            ("a = {x = 1}\n", 1, "inline tables"),
            ("[[jobs]]\n", 1, "arrays of tables"),
            ("[unclosed\n", 1, "unclosed table header"),
            ("bad!key = 1\n", 1, "invalid key segment"),
        ] {
            let err = parse(src).unwrap_err();
            assert_eq!(err.line, Some(line), "{src:?}");
            assert!(err.msg.contains(needle), "{src:?} -> {}", err.msg);
        }
    }

    #[test]
    fn keys_iterate_in_insertion_order() {
        let doc = parse("b = 1\na = 2\n[t]\nz = 3\n").unwrap();
        let keys: Vec<&str> = doc.keys().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["b", "a", "t"]);
    }
}
