//! Figure 10 — scalability: average single-round time (left) and total time
//! to reach 80 % accuracy (right) as the number of workers `N` varies, for
//! all five mechanisms (CNN on the MNIST-like dataset).
//!
//! Shapes to reproduce: FedAvg's round time grows with `N` (OMA uploads);
//! Air-FedAvg's and Dynamic's stay flat (AirComp); Air-FedGA's and TiFL's
//! *fall* with `N` (more workers → more groups → more frequent asynchronous
//! updates). Total training time consequently grows with `N` for the OMA
//! mechanisms and shrinks for the AirComp ones, with Air-FedGA fastest at
//! `N = 100`.
//!
//! A thin wrapper over the committed `scenarios/fig10.toml` spec (embedded
//! at compile time): the sweep is data, executed by the same driver as
//! `airfedga-run`, with output byte-identical to the pre-scenario hardcoded
//! binary. `--seeds N` and `--system-seeds` work exactly as before.

const SPEC: &str = include_str!("../../../../scenarios/fig10.toml");

fn main() {
    match scenario::run_scenario_str(SPEC) {
        Ok(report) => {
            let failures = report.failure_report();
            if !failures.is_empty() {
                eprint!("{failures}");
            }
            if !report.is_clean() {
                eprintln!("fig10_scalability: finished with unrecovered failures");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("fig10_scalability: scenarios/fig10.toml: {e}");
            std::process::exit(2);
        }
    }
}
