//! Figure 8 — training time to reach 80 / 85 / 90 % accuracy as a function of
//! the grouping-similarity parameter ξ ∈ [0, 1] (CNN on the MNIST-like
//! dataset).
//!
//! The paper finds a U-shape with the minimum near ξ = 0.3: ξ → 0 degenerates
//! to fully-asynchronous single-worker updates (no AirComp benefit, many
//! stale updates), while ξ → 1 recreates the straggler problem inside large
//! groups. The reproduced sweep should show both ends slower than the middle.
//!
//! A thin wrapper over the committed `scenarios/fig8.toml` spec (embedded at
//! compile time): the sweep is data, executed by the same driver as
//! `airfedga-run`, with output byte-identical to the pre-scenario hardcoded
//! binary. `--seeds N` and `--system-seeds` work exactly as before.

const SPEC: &str = include_str!("../../../../scenarios/fig8.toml");

fn main() {
    match scenario::run_scenario_str(SPEC) {
        Ok(report) => {
            let failures = report.failure_report();
            if !failures.is_empty() {
                eprint!("{failures}");
            }
            if !report.is_clean() {
                eprintln!("fig8_xi_sweep: finished with unrecovered failures");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("fig8_xi_sweep: scenarios/fig8.toml: {e}");
            std::process::exit(2);
        }
    }
}
