//! Figure 9 — aggregation energy consumed to reach a target accuracy, for
//! the three AirComp mechanisms, on CNN/MNIST-like (left) and
//! CNN/CIFAR-10-like (right).
//!
//! Shape to reproduce: Air-FedAvg spends the least energy (fewest
//! aggregations per worker), Air-FedGA slightly more (asynchronous groups
//! aggregate more often), Dynamic the most (its data-agnostic worker
//! selection needs more rounds to converge).
//!
//! A thin wrapper over the committed `scenarios/fig9.toml` and
//! `scenarios/fig9_cifar.toml` specs (embedded at compile time), run in
//! sequence through the same driver as `airfedga-run` — output is
//! byte-identical to the pre-scenario hardcoded binary, one panel per spec.
//! `--seeds N` replicates every mechanism over N run seeds; the
//! energy-to-accuracy tables then report mean±std [reached/total] per cell.
//! The default (1) is byte-identical to the historical single-seed output.

const SPECS: [(&str, &str); 2] = [
    (
        "scenarios/fig9.toml",
        include_str!("../../../../scenarios/fig9.toml"),
    ),
    (
        "scenarios/fig9_cifar.toml",
        include_str!("../../../../scenarios/fig9_cifar.toml"),
    ),
];

fn main() {
    let mut lost_replicates = false;
    for (path, spec) in SPECS {
        match scenario::run_scenario_str(spec) {
            Ok(report) => {
                let failures = report.failure_report();
                if !failures.is_empty() {
                    eprint!("{failures}");
                }
                lost_replicates |= !report.is_clean();
            }
            Err(e) => {
                eprintln!("fig9_energy: {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if lost_replicates {
        eprintln!("fig9_energy: finished with unrecovered failures");
        std::process::exit(1);
    }
}
