//! Figure 3 — Loss/Accuracy vs. time for "LR" (2-hidden-layer FC net) on the
//! MNIST-like dataset, comparing the three AirComp-based mechanisms
//! (Dynamic, Air-FedAvg, Air-FedGA). The paper reports Air-FedGA reaching a
//! stable 80 % accuracy ≈29.9 % faster than Air-FedAvg and ≈71.6 % faster
//! than Dynamic; the reproduced ordering (Air-FedGA < Air-FedAvg < Dynamic)
//! is the shape to check.
//!
//! A thin wrapper over the committed `scenarios/fig3.toml` spec (embedded at
//! compile time, so the binary runs from any directory): the experiment
//! itself is data, executed by the same driver as `airfedga-run`, and the
//! output is byte-identical to the pre-scenario hardcoded binary. `--seeds N`
//! and `--system-seeds` work exactly as before.

const SPEC: &str = include_str!("../../../../scenarios/fig3.toml");

fn main() {
    match scenario::run_scenario_str(SPEC) {
        Ok(report) => {
            let failures = report.failure_report();
            if !failures.is_empty() {
                eprint!("{failures}");
            }
            if !report.is_clean() {
                eprintln!("fig3_lr_mnist: finished with unrecovered failures");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("fig3_lr_mnist: scenarios/fig3.toml: {e}");
            std::process::exit(2);
        }
    }
}
