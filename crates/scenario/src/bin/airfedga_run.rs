//! `airfedga-run <scenario.toml>` — execute any declarative scenario file.
//!
//! The driver reads a spec (see the `scenario` crate and `scenarios/` for
//! the format), validates it against the component registry, and runs it
//! through the same deterministic experiment machinery the figure binaries
//! use. Flags:
//!
//! * `--seeds N` — replicate over N run seeds (overrides `run.seeds`).
//! * `--system-seeds` — also re-sample the system per replicate.
//! * `--resume` — load completed replicates from the `runstore/` run store
//!   and persist fresh ones, so a killed grid picks up where it left off.
//! * `--fresh` — discard this scenario's stored replicates first, then
//!   persist as `--resume` does.
//! * `--telemetry <dir>` — enable telemetry for the run and write
//!   `spans.jsonl` / `metrics.json` / `profile.json` into `<dir>` afterwards
//!   (stdout, CSVs and the run store stay byte-identical — CI diffs them).
//! * `--progress` — force the stderr progress reporter on even when stderr
//!   is not a TTY.
//! * `--store-root DIR` — relocate the run store away from `runstore/` (the
//!   job server shares one root across jobs this way).
//! * `--results-dir DIR` — relocate CSV output away from `results/`.
//! * `--list-components` — print the registry catalogue and exit.
//!
//! Scale comes from `AIRFEDGA_SCALE` (`full` / `quick`), exactly as for the
//! figure binaries. The driver prints nothing beyond what the scenario's
//! driver prints, so spec-driven output stays byte-comparable to the legacy
//! binaries (CI diffs them). Exit status: 0 on a clean run, 1 when the grid
//! finished but lost replicates for good (the failure report goes to
//! stderr), 2 on usage/parse errors.

use scenario::run::{EXIT_CLEAN, EXIT_FAILURES, EXIT_USAGE};
use scenario::run_scenario_str;
use scenario::Registry;

const USAGE: &str = "usage: airfedga-run <scenario.toml> [--seeds N] [--system-seeds] \
                     [--resume | --fresh] [--telemetry DIR] [--progress]\n\
                     \u{20}                   [--store-root DIR] [--results-dir DIR]\n\
                     \u{20}      airfedga-run --list-components\n\
                     exit status: 0 clean run; 1 grid finished with unrecovered replicate \
                     failures; 2 usage, read or spec errors";

/// Extract the scenario path, rejecting unknown flags and extra operands —
/// a typo'd flag (`--system-seed`, `--seed 3`) must fail loudly, not
/// silently run a different experiment than the one requested.
fn scenario_path(args: &[String]) -> Result<String, String> {
    let mut path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                if it.next().is_none() {
                    return Err("--seeds requires a value (e.g. --seeds 3)".to_string());
                }
            }
            "--telemetry" | "--store-root" | "--results-dir" => {
                if it.next().is_none() {
                    return Err(format!("{a} requires a directory (e.g. {a} out/)"));
                }
            }
            "--system-seeds" | "--resume" | "--fresh" | "--progress" => {}
            _ if a.starts_with("--seeds=") => {}
            _ if a.starts_with("--telemetry=") => {}
            _ if a.starts_with("--store-root=") => {}
            _ if a.starts_with("--results-dir=") => {}
            _ if a.starts_with('-') => {
                return Err(format!("unknown flag `{a}`"));
            }
            _ => {
                if let Some(first) = &path {
                    return Err(format!(
                        "unexpected extra argument `{a}` (scenario file already given: {first})"
                    ));
                }
                path = Some(a.clone());
            }
        }
    }
    path.ok_or_else(|| "missing scenario file".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-components") {
        print!("{}", Registry::builtin().describe());
        return;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let path = match scenario_path(&args) {
        Ok(path) => path,
        Err(e) => {
            eprintln!("airfedga-run: {e}\n{USAGE}");
            std::process::exit(EXIT_USAGE);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("airfedga-run: cannot read {path}: {e}");
            std::process::exit(EXIT_USAGE);
        }
    };
    match run_scenario_str(&text) {
        Ok(report) => {
            // Failures (recovered ones included) go to stderr so stdout
            // stays byte-comparable; unrecovered losses make the run fail.
            let failures = report.failure_report();
            if !failures.is_empty() {
                eprint!("{failures}");
            }
            // The `--resume`/`--fresh` cache summary and the telemetry
            // profile are stderr-only for the same reason.
            if let Some(cache) = &report.cache {
                eprintln!("{}", cache.summary());
            }
            if let Some(profile) = &report.profile {
                eprint!("{profile}");
            }
            if !report.is_clean() {
                eprintln!("airfedga-run: {path}: grid finished with unrecovered failures");
                std::process::exit(EXIT_FAILURES);
            }
            std::process::exit(EXIT_CLEAN);
        }
        Err(e) => {
            eprintln!("airfedga-run: {path}: {e}");
            std::process::exit(EXIT_USAGE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::scenario_path;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn known_flags_and_one_path_are_accepted() {
        assert_eq!(
            scenario_path(&args(&["scenarios/fig3.toml"])).unwrap(),
            "scenarios/fig3.toml"
        );
        assert_eq!(
            scenario_path(&args(&["--seeds", "3", "s.toml", "--system-seeds"])).unwrap(),
            "s.toml"
        );
        assert_eq!(
            scenario_path(&args(&["--seeds=3", "s.toml"])).unwrap(),
            "s.toml"
        );
        assert_eq!(
            scenario_path(&args(&["s.toml", "--resume"])).unwrap(),
            "s.toml"
        );
        assert_eq!(
            scenario_path(&args(&["--fresh", "s.toml"])).unwrap(),
            "s.toml"
        );
        assert_eq!(
            scenario_path(&args(&["s.toml", "--telemetry", "out/", "--progress"])).unwrap(),
            "s.toml"
        );
        assert_eq!(
            scenario_path(&args(&["--telemetry=out/tel", "s.toml"])).unwrap(),
            "s.toml"
        );
        assert_eq!(
            scenario_path(&args(&[
                "s.toml",
                "--store-root",
                "sr/",
                "--results-dir",
                "rd/"
            ]))
            .unwrap(),
            "s.toml"
        );
        assert_eq!(
            scenario_path(&args(&["--store-root=sr", "--results-dir=rd", "s.toml"])).unwrap(),
            "s.toml"
        );
    }

    #[test]
    fn typoed_flags_fail_instead_of_silently_running() {
        assert!(scenario_path(&args(&["s.toml", "--system-seed"]))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(scenario_path(&args(&["s.toml", "--seed", "3"]))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(scenario_path(&args(&["--seeds"]))
            .unwrap_err()
            .contains("requires a value"));
        assert!(scenario_path(&args(&["s.toml", "--telemetry"]))
            .unwrap_err()
            .contains("requires a directory"));
        assert!(scenario_path(&args(&["s.toml", "--store-root"]))
            .unwrap_err()
            .contains("requires a directory"));
        assert!(scenario_path(&args(&["s.toml", "--results-dir"]))
            .unwrap_err()
            .contains("requires a directory"));
        assert!(scenario_path(&args(&["s.toml", "--telemetries", "out/"]))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(scenario_path(&args(&["a.toml", "b.toml"]))
            .unwrap_err()
            .contains("extra argument"));
        assert!(scenario_path(&args(&[]))
            .unwrap_err()
            .contains("missing scenario file"));
    }
}
