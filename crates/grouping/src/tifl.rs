//! TiFL-style latency-tier grouping (baseline).
//!
//! TiFL (Chai et al., HPDC 2020 — reference [26] of the paper) organises
//! workers into tiers by their observed response latency and lets tiers
//! participate in training asynchronously. Unlike Air-FedGA's Algorithm 3 it
//! ignores the data distribution entirely, which is why Table III shows its
//! inter-group EMD (0.69) sitting between the original 1.8 and Air-FedGA's
//! 0.21, and why it handles Non-IID data worse in Figs. 3–6.

use crate::worker_info::{Grouping, WorkerInfo};

/// Group workers into `num_tiers` latency tiers of (near-)equal size: the
/// fastest `N/num_tiers` workers form tier 0, the next block tier 1, etc.
pub fn tifl_grouping(workers: &[WorkerInfo], num_tiers: usize) -> Grouping {
    assert!(!workers.is_empty(), "cannot tier an empty worker set");
    assert!(num_tiers > 0, "need at least one tier");
    let tiers = num_tiers.min(workers.len());
    let mut order: Vec<usize> = (0..workers.len()).collect();
    // `total_cmp`, not `partial_cmp(..).unwrap()`: a NaN latency (e.g. an
    // uninitialised or failed timing probe) must not panic the grouping.
    // NaN compares greater than every finite latency under the IEEE total
    // order, so such workers deterministically land in the slowest tier.
    order.sort_by(|&a, &b| {
        workers[a]
            .local_training_time
            .total_cmp(&workers[b].local_training_time)
            .then(a.cmp(&b))
    });
    // Deal contiguous latency blocks into tiers; remainders go to the first
    // tiers so sizes differ by at most one.
    let base = workers.len() / tiers;
    let extra = workers.len() % tiers;
    let mut groups = Vec::with_capacity(tiers);
    let mut start = 0;
    for t in 0..tiers {
        let size = base + usize::from(t < extra);
        let members: Vec<usize> = order[start..start + size].to_vec();
        start += size;
        groups.push(members);
    }
    Grouping::new(groups, workers.len())
}

/// Pick the TiFL tier count the way the baseline implementation does: about
/// one tier per latency decile, bounded to `[2, 10]` and by the population.
pub fn default_tier_count(num_workers: usize) -> usize {
    (num_workers / 10).clamp(2, 10).min(num_workers.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emd::average_group_emd;

    fn workers(n: usize) -> Vec<WorkerInfo> {
        (0..n)
            .map(|i| {
                let mut counts = vec![0usize; 10];
                counts[i * 10 / n] = 30;
                // Latency correlates with the worker index modulo nothing in
                // particular — use a shuffled-looking but deterministic value.
                let latency = 5.0 + ((i * 37) % 100) as f64 * 0.5;
                WorkerInfo::new(i, latency, 30, counts)
            })
            .collect()
    }

    #[test]
    fn produces_equal_sized_tiers() {
        let ws = workers(100);
        let g = tifl_grouping(&ws, 5);
        assert_eq!(g.num_groups(), 5);
        for j in 0..5 {
            assert_eq!(g.group(j).len(), 20);
        }
    }

    #[test]
    fn tiers_are_latency_ordered() {
        let ws = workers(50);
        let g = tifl_grouping(&ws, 5);
        let tier_max: Vec<f64> = (0..5).map(|j| g.group_max_latency(j, &ws)).collect();
        for pair in tier_max.windows(2) {
            assert!(
                pair[0] <= pair[1],
                "tiers not latency ordered: {tier_max:?}"
            );
        }
        // No member of tier j+1 is faster than the slowest member of tier j.
        for (j, &cur_max) in tier_max.iter().take(4).enumerate() {
            let next_min = g
                .group(j + 1)
                .iter()
                .map(|&w| ws[w].local_training_time)
                .fold(f64::INFINITY, f64::min);
            assert!(next_min >= cur_max - 1e-9);
        }
    }

    #[test]
    fn handles_more_tiers_than_workers() {
        let ws = workers(3);
        let g = tifl_grouping(&ws, 10);
        assert_eq!(g.num_groups(), 3);
    }

    #[test]
    fn uneven_population_distributes_remainder() {
        let ws = workers(23);
        let g = tifl_grouping(&ws, 5);
        let sizes: Vec<usize> = g.groups().iter().map(|x| x.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 23);
        assert!(sizes.iter().all(|&s| s == 4 || s == 5));
    }

    #[test]
    fn tifl_emd_sits_between_original_and_zero() {
        // Table III shape: 0 < TiFL EMD < original (1.8 for single-label).
        let ws: Vec<WorkerInfo> = (0..100)
            .map(|i| {
                let mut counts = vec![0usize; 10];
                counts[i / 10] = 30;
                let latency = 8.0 + ((i * 13) % 54) as f64;
                WorkerInfo::new(i, latency, 30, counts)
            })
            .collect();
        let tifl = tifl_grouping(&ws, 7);
        let emd = average_group_emd(&tifl, &ws);
        assert!(emd > 0.05 && emd < 1.8, "TiFL EMD {emd}");
    }

    #[test]
    fn nan_latency_does_not_panic_and_lands_in_the_slowest_tier() {
        // Regression: the sort used partial_cmp(..).unwrap(), which panicked
        // as soon as one worker reported a NaN training time.
        let mut ws = workers(12);
        ws[3].local_training_time = f64::NAN;
        let g = tifl_grouping(&ws, 3);
        assert_eq!(g.num_groups(), 3);
        let sizes: Vec<usize> = g.groups().iter().map(|x| x.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 12);
        // NaN is the maximum of the IEEE total order, so worker 3 sits in the
        // last (slowest) tier; everyone is placed exactly once.
        assert!(g.group(2).contains(&3), "NaN worker not in slowest tier");
        let mut all: Vec<usize> = g.groups().iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn default_tier_count_is_clamped() {
        assert_eq!(default_tier_count(100), 10);
        assert_eq!(default_tier_count(30), 3);
        assert_eq!(default_tier_count(5), 2);
    }
}
