//! Worker summaries and validated groupings.
//!
//! The grouping algorithms of §V never look at raw samples; they only need
//! each worker's estimated local-training latency `l_i`, data size `d_i` and
//! per-class data sizes `d_i^k`. [`WorkerInfo`] carries exactly that, and
//! [`Grouping`] is a partition of worker indices into groups with the
//! bookkeeping the objective and the mechanisms need (`D_j`, `β_j`, group
//! latencies, membership lookup).

use fedml::partition::LabelDistribution;
use serde::{Deserialize, Serialize};

/// What the grouping algorithms know about one worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerInfo {
    /// Worker index.
    pub id: usize,
    /// Estimated local training time `l_i` (seconds), assumed known from
    /// historical measurements (§V.A).
    pub local_training_time: f64,
    /// Local data size `d_i`.
    pub data_size: usize,
    /// Per-class sample counts `d_i^k`.
    pub label_counts: Vec<usize>,
}

impl WorkerInfo {
    /// Build a worker summary. Panics if `label_counts` does not sum to
    /// `data_size` or the latency is not positive.
    pub fn new(
        id: usize,
        local_training_time: f64,
        data_size: usize,
        label_counts: Vec<usize>,
    ) -> Self {
        assert!(
            local_training_time > 0.0 && local_training_time.is_finite(),
            "local training time must be positive"
        );
        assert!(data_size > 0, "data size must be positive");
        assert_eq!(
            label_counts.iter().sum::<usize>(),
            data_size,
            "label counts must sum to the data size"
        );
        Self {
            id,
            local_training_time,
            data_size,
            label_counts,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.label_counts.len()
    }

    /// The worker's label distribution `α_i^k`.
    pub fn label_distribution(&self) -> LabelDistribution {
        LabelDistribution::from_counts(&self.label_counts)
    }

    /// Spread `Δl = max_i l_i − min_i l_i` across a worker population
    /// (Eq. (36d) is expressed relative to this quantity).
    pub fn latency_spread(workers: &[WorkerInfo]) -> f64 {
        assert!(!workers.is_empty(), "no workers");
        let max = workers
            .iter()
            .map(|w| w.local_training_time)
            .fold(f64::NEG_INFINITY, f64::max);
        let min = workers
            .iter()
            .map(|w| w.local_training_time)
            .fold(f64::INFINITY, f64::min);
        max - min
    }

    /// Total data size `D` of a worker population.
    pub fn total_data(workers: &[WorkerInfo]) -> usize {
        workers.iter().map(|w| w.data_size).sum()
    }

    /// Global label counts `Σ_i d_i^k` of a worker population.
    pub fn global_label_counts(workers: &[WorkerInfo]) -> Vec<usize> {
        assert!(!workers.is_empty(), "no workers");
        let k = workers[0].num_classes();
        let mut counts = vec![0usize; k];
        for w in workers {
            assert_eq!(w.num_classes(), k, "class-count mismatch across workers");
            for (c, &n) in counts.iter_mut().zip(w.label_counts.iter()) {
                *c += n;
            }
        }
        counts
    }
}

/// Total data size of an arbitrary set of worker indices.
pub fn slice_data_size(group: &[usize], workers: &[WorkerInfo]) -> usize {
    group.iter().map(|&w| workers[w].data_size).sum()
}

/// Label distribution of the union of an arbitrary set of worker indices.
pub fn slice_label_distribution(group: &[usize], workers: &[WorkerInfo]) -> LabelDistribution {
    assert!(!group.is_empty(), "empty worker set");
    let k = workers[group[0]].num_classes();
    let mut counts = vec![0usize; k];
    for &w in group {
        for (c, &n) in counts.iter_mut().zip(workers[w].label_counts.iter()) {
            *c += n;
        }
    }
    LabelDistribution::from_counts(&counts)
}

/// Slowest local-training time within an arbitrary set of worker indices.
pub fn slice_max_latency(group: &[usize], workers: &[WorkerInfo]) -> f64 {
    assert!(!group.is_empty(), "empty worker set");
    group
        .iter()
        .map(|&w| workers[w].local_training_time)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Fastest local-training time within an arbitrary set of worker indices.
pub fn slice_min_latency(group: &[usize], workers: &[WorkerInfo]) -> f64 {
    assert!(!group.is_empty(), "empty worker set");
    group
        .iter()
        .map(|&w| workers[w].local_training_time)
        .fold(f64::INFINITY, f64::min)
}

/// A partition of workers into groups (the paper's `V = {V_1, …, V_M}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grouping {
    groups: Vec<Vec<usize>>,
    num_workers: usize,
}

impl Grouping {
    /// Build a grouping from explicit member lists, validating that the
    /// groups form a partition of `0..num_workers` with no empty group.
    pub fn new(groups: Vec<Vec<usize>>, num_workers: usize) -> Self {
        assert!(!groups.is_empty(), "a grouping needs at least one group");
        let mut seen = vec![false; num_workers];
        for (gi, g) in groups.iter().enumerate() {
            assert!(!g.is_empty(), "group {gi} is empty");
            for &w in g {
                assert!(w < num_workers, "worker {w} out of range");
                assert!(!seen[w], "worker {w} appears in two groups");
                seen[w] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "grouping does not cover every worker"
        );
        Self {
            groups,
            num_workers,
        }
    }

    /// The trivial grouping with every worker in one group (synchronous FL).
    pub fn single_group(num_workers: usize) -> Self {
        Self::new(vec![(0..num_workers).collect()], num_workers)
    }

    /// The fully-asynchronous grouping: every worker is its own group.
    pub fn singletons(num_workers: usize) -> Self {
        Self::new((0..num_workers).map(|w| vec![w]).collect(), num_workers)
    }

    /// Number of groups `M`.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of workers `N`.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Member worker indices of group `j`.
    pub fn group(&self, j: usize) -> &[usize] {
        &self.groups[j]
    }

    /// All groups.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// The group index of a worker.
    pub fn group_of(&self, worker: usize) -> usize {
        for (j, g) in self.groups.iter().enumerate() {
            if g.contains(&worker) {
                return j;
            }
        }
        panic!("worker {worker} not present in the grouping");
    }

    /// Group data size `D_j`.
    pub fn group_data_size(&self, j: usize, workers: &[WorkerInfo]) -> usize {
        self.groups[j].iter().map(|&w| workers[w].data_size).sum()
    }

    /// Group share of the total data, `β_j = D_j / D`.
    pub fn group_data_fraction(&self, j: usize, workers: &[WorkerInfo]) -> f64 {
        self.group_data_size(j, workers) as f64 / WorkerInfo::total_data(workers) as f64
    }

    /// Group label distribution `β_j^k`.
    pub fn group_label_distribution(&self, j: usize, workers: &[WorkerInfo]) -> LabelDistribution {
        let k = workers[self.groups[j][0]].num_classes();
        let mut counts = vec![0usize; k];
        for &w in &self.groups[j] {
            for (c, &n) in counts.iter_mut().zip(workers[w].label_counts.iter()) {
                *c += n;
            }
        }
        LabelDistribution::from_counts(&counts)
    }

    /// The slowest local-training time inside group `j` (`max_{v_i∈V_j} l_i`).
    pub fn group_max_latency(&self, j: usize, workers: &[WorkerInfo]) -> f64 {
        self.groups[j]
            .iter()
            .map(|&w| workers[w].local_training_time)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Per-group completion times `L_j = max_{v_i∈V_j} l_i + L_u` (Eq. (34)).
    pub fn group_completion_times(
        &self,
        workers: &[WorkerInfo],
        aggregation_time: f64,
    ) -> Vec<f64> {
        (0..self.num_groups())
            .map(|j| self.group_max_latency(j, workers) + aggregation_time)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workers() -> Vec<WorkerInfo> {
        vec![
            WorkerInfo::new(0, 10.0, 20, vec![20, 0]),
            WorkerInfo::new(1, 20.0, 30, vec![0, 30]),
            WorkerInfo::new(2, 30.0, 50, vec![25, 25]),
        ]
    }

    #[test]
    fn worker_info_invariants() {
        let w = WorkerInfo::new(0, 5.0, 10, vec![4, 6]);
        assert_eq!(w.num_classes(), 2);
        assert_eq!(w.label_distribution().proportions, vec![0.4, 0.6]);
    }

    #[test]
    #[should_panic(expected = "label counts must sum")]
    fn worker_info_rejects_inconsistent_counts() {
        let _ = WorkerInfo::new(0, 5.0, 10, vec![4, 4]);
    }

    #[test]
    fn population_helpers() {
        let ws = workers();
        assert_eq!(WorkerInfo::total_data(&ws), 100);
        assert_eq!(WorkerInfo::latency_spread(&ws), 20.0);
        assert_eq!(WorkerInfo::global_label_counts(&ws), vec![45, 55]);
    }

    #[test]
    fn grouping_accessors() {
        let ws = workers();
        let g = Grouping::new(vec![vec![0, 1], vec![2]], 3);
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.group_of(1), 0);
        assert_eq!(g.group_of(2), 1);
        assert_eq!(g.group_data_size(0, &ws), 50);
        assert!((g.group_data_fraction(1, &ws) - 0.5).abs() < 1e-12);
        assert_eq!(g.group_max_latency(0, &ws), 20.0);
        let completion = g.group_completion_times(&ws, 1.0);
        assert_eq!(completion, vec![21.0, 31.0]);
        let dist = g.group_label_distribution(0, &ws);
        assert_eq!(dist.proportions, vec![0.4, 0.6]);
    }

    #[test]
    fn single_group_and_singletons() {
        let all = Grouping::single_group(4);
        assert_eq!(all.num_groups(), 1);
        assert_eq!(all.group(0).len(), 4);
        let each = Grouping::singletons(4);
        assert_eq!(each.num_groups(), 4);
    }

    #[test]
    #[should_panic(expected = "appears in two groups")]
    fn grouping_rejects_overlap() {
        let _ = Grouping::new(vec![vec![0, 1], vec![1]], 2);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn grouping_rejects_missing_workers() {
        let _ = Grouping::new(vec![vec![0]], 2);
    }
}
