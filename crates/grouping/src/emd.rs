//! Earth mover distance between label distributions.
//!
//! Eq. (11) of the paper measures how far a group's data distribution is from
//! the global one: `Λ_j = EMD(D, D_j) = Σ_{c_k∈C} |λ^k − β_j^k|`. Over a
//! categorical label space with unit ground distance this is exactly the L1
//! distance between the two probability vectors, so `Λ_j ∈ [0, 2]`.
//! Corollary 1 ties the convergence residual δ to these distances, and
//! Table III compares the average EMD achieved by different grouping methods
//! (Original 1.8 → TiFL 0.69 → Air-FedGA 0.21).

use crate::worker_info::{Grouping, WorkerInfo};
use fedml::partition::LabelDistribution;

/// The EMD `Λ_j` between one group's label distribution and the global one.
pub fn group_emd(grouping: &Grouping, group: usize, workers: &[WorkerInfo]) -> f64 {
    let global = LabelDistribution::from_counts(&WorkerInfo::global_label_counts(workers));
    grouping
        .group_label_distribution(group, workers)
        .l1_distance(&global)
}

/// The unweighted average EMD `Λ̄ = (1/M) Σ_j Λ_j` over all groups — the
/// quantity reported in Table III.
pub fn average_group_emd(grouping: &Grouping, workers: &[WorkerInfo]) -> f64 {
    let global = LabelDistribution::from_counts(&WorkerInfo::global_label_counts(workers));
    let m = grouping.num_groups();
    (0..m)
        .map(|j| {
            grouping
                .group_label_distribution(j, workers)
                .l1_distance(&global)
        })
        .sum::<f64>()
        / m as f64
}

/// EMD of a single worker's distribution against the global one (the
/// "Original" column of Table III treats every worker as its own group).
pub fn worker_emd(worker: &WorkerInfo, workers: &[WorkerInfo]) -> f64 {
    let global = LabelDistribution::from_counts(&WorkerInfo::global_label_counts(workers));
    worker.label_distribution().l1_distance(&global)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ten workers, each holding a single distinct label (the paper's MNIST
    /// label-skew setup scaled down).
    fn single_label_workers() -> Vec<WorkerInfo> {
        (0..10)
            .map(|i| {
                let mut counts = vec![0usize; 10];
                counts[i] = 100;
                WorkerInfo::new(i, 10.0, 100, counts)
            })
            .collect()
    }

    #[test]
    fn singleton_grouping_reproduces_original_emd_of_1_8() {
        let ws = single_label_workers();
        let g = Grouping::singletons(10);
        let avg = average_group_emd(&g, &ws);
        // |1 - 1/10| + 9 * |0 - 1/10| = 1.8 exactly (paper §VI.B.3).
        assert!((avg - 1.8).abs() < 1e-12, "average EMD {avg}");
    }

    #[test]
    fn single_group_has_zero_emd() {
        let ws = single_label_workers();
        let g = Grouping::single_group(10);
        assert!(average_group_emd(&g, &ws) < 1e-12);
    }

    #[test]
    fn balanced_pairs_halve_the_emd() {
        // Pairing label-k with label-(k+5) workers gives each group two of
        // ten classes: EMD = 2*|1/2 - 1/10| + 8*|0 - 1/10| = 1.6.
        let ws = single_label_workers();
        let groups: Vec<Vec<usize>> = (0..5).map(|i| vec![i, i + 5]).collect();
        let g = Grouping::new(groups, 10);
        let avg = average_group_emd(&g, &ws);
        assert!((avg - 1.6).abs() < 1e-12, "average EMD {avg}");
    }

    #[test]
    fn group_emd_is_bounded() {
        let ws = single_label_workers();
        let g = Grouping::new(vec![vec![0, 1, 2], vec![3, 4, 5, 6], vec![7, 8, 9]], 10);
        for j in 0..g.num_groups() {
            let e = group_emd(&g, j, &ws);
            assert!((0.0..=2.0).contains(&e), "EMD {e} out of [0,2]");
        }
    }

    #[test]
    fn worker_emd_matches_singleton_group_emd() {
        let ws = single_label_workers();
        let g = Grouping::singletons(10);
        for (i, w) in ws.iter().enumerate() {
            assert!((worker_emd(w, &ws) - group_emd(&g, i, &ws)).abs() < 1e-12);
        }
    }
}
