//! Algorithm 3 — the greedy worker-grouping heuristic.
//!
//! Problem (P4) asks for the grouping `x` minimising the estimated total
//! training time `L(x)·(1 + τ̂_max)·log_B A` subject to the ξ-constraint.
//! Exhaustive search is `O(M^N)`; Algorithm 3 instead processes workers in
//! descending order of data size and places each one into the existing group
//! (or a fresh group) that minimises the current objective while keeping the
//! constraint satisfied. The worst-case complexity is `O(N²)` objective
//! evaluations, negligible next to training time.

use crate::objective::GroupingObjective;
use crate::worker_info::{Grouping, WorkerInfo};
use serde::{Deserialize, Serialize};

/// Configuration of the greedy grouping run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GreedyGroupingConfig {
    /// The objective/constraint evaluator (carries `L_u`, ξ and the
    /// convergence constants).
    pub objective: GroupingObjective,
    /// If true (the paper's choice), workers are processed in descending
    /// order of data size; if false, in index order (useful for ablation).
    pub sort_by_data_size: bool,
}

impl GreedyGroupingConfig {
    /// Standard configuration used by the experiments.
    pub fn new(objective: GroupingObjective) -> Self {
        Self {
            objective,
            sort_by_data_size: true,
        }
    }
}

/// Run Algorithm 3 over the given worker population and return the resulting
/// grouping (a validated partition of all workers).
pub fn greedy_grouping(workers: &[WorkerInfo], cfg: &GreedyGroupingConfig) -> Grouping {
    assert!(!workers.is_empty(), "cannot group an empty worker set");
    // Line 3: sort workers in descending order of data size. The paper
    // leaves the order of equal-sized workers unspecified; we break ties by
    // round-robining across the workers' dominant classes (rank within the
    // class first, then class id, then worker id). Under the label-skew
    // partition every worker has the same data size, and a class-blocked tie
    // order would force the first classes to be spread before the greedy has
    // any chance to balance labels — the round-robin order lets every
    // placement decision see the full label spectrum.
    let mut seen_per_label: Vec<usize> = vec![0; workers[0].num_classes()];
    let mut rank_within_label: Vec<usize> = vec![0; workers.len()];
    let mut dominant_label: Vec<usize> = vec![0; workers.len()];
    for (i, w) in workers.iter().enumerate() {
        let label = w
            .label_counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(k, _)| k)
            .unwrap_or(0);
        dominant_label[i] = label;
        rank_within_label[i] = seen_per_label[label];
        seen_per_label[label] += 1;
    }
    let mut order: Vec<usize> = (0..workers.len()).collect();
    if cfg.sort_by_data_size {
        order.sort_by(|&a, &b| {
            workers[b]
                .data_size
                .cmp(&workers[a].data_size)
                .then(rank_within_label[a].cmp(&rank_within_label[b]))
                .then(dominant_label[a].cmp(&dominant_label[b]))
                .then(a.cmp(&b))
        });
    }

    let mut groups: Vec<Vec<usize>> = Vec::new();
    for &wi in &order {
        // Lines 5-13: try every existing group plus a fresh singleton group.
        let mut best_objective = f64::INFINITY;
        let mut best_group: Option<usize> = None;
        for j in 0..=groups.len() {
            let mut candidate = groups.clone();
            if j == groups.len() {
                candidate.push(vec![wi]);
            } else {
                candidate[j].push(wi);
            }
            // Constraint (36d) must hold for the group that received the
            // worker (the other groups are unchanged).
            if !cfg.objective.slice_satisfies_xi(&candidate[j], workers) {
                continue;
            }
            let value = cfg.objective.evaluate_groups(&candidate, workers);
            if value < best_objective {
                best_objective = value;
                best_group = Some(j);
            }
        }
        // Lines 14-18: commit the best placement; if every placement was
        // infeasible (e.g. the convergence bound cannot be met yet), fall
        // back to a fresh singleton group, which always satisfies (36d).
        match best_group {
            Some(j) if j < groups.len() => groups[j].push(wi),
            _ => groups.push(vec![wi]),
        }
    }
    Grouping::new(groups, workers.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emd::average_group_emd;
    use crate::objective::ObjectiveConstants;

    /// The paper's setup in miniature: `n` workers, `k` classes, worker `i`
    /// holds only label `i·k/n`, latencies drawn from a ladder so similar
    /// latencies sit next to each other *across* label blocks.
    fn heterogeneous_single_label_workers(n: usize, k: usize) -> Vec<WorkerInfo> {
        (0..n)
            .map(|i| {
                let mut counts = vec![0usize; k];
                counts[i * k / n] = 40;
                // Latency pattern decoupled from the label: workers with the
                // same (i mod k) residue have similar latency.
                let latency = 8.0 + 6.0 * ((i % k) as f64) + 0.3 * (i / k) as f64;
                WorkerInfo::new(i, latency, 40, counts)
            })
            .collect()
    }

    fn config(xi: f64) -> GreedyGroupingConfig {
        GreedyGroupingConfig::new(GroupingObjective::new(
            0.5,
            xi,
            ObjectiveConstants::default(),
        ))
    }

    #[test]
    fn produces_a_valid_partition() {
        let ws = heterogeneous_single_label_workers(30, 10);
        let g = greedy_grouping(&ws, &config(0.3));
        assert_eq!(g.num_workers(), 30);
        let covered: usize = g.groups().iter().map(|x| x.len()).sum();
        assert_eq!(covered, 30);
    }

    #[test]
    fn respects_the_xi_constraint() {
        let ws = heterogeneous_single_label_workers(40, 10);
        for xi in [0.1, 0.3, 0.6, 1.0] {
            let cfg = config(xi);
            let g = greedy_grouping(&ws, &cfg);
            assert!(
                cfg.objective.satisfies_xi(&g, &ws),
                "xi = {xi} constraint violated"
            );
        }
    }

    #[test]
    fn xi_zero_degenerates_towards_singletons() {
        let ws = heterogeneous_single_label_workers(20, 10);
        let g = greedy_grouping(&ws, &config(0.0));
        // With xi = 0 only workers with identical latency may share a group;
        // our latency ladder has all-distinct latencies, so every group is a
        // singleton (fully asynchronous FL, as discussed for Fig. 8).
        assert_eq!(g.num_groups(), 20);
    }

    #[test]
    fn grouping_reduces_average_emd_well_below_original() {
        let ws = heterogeneous_single_label_workers(100, 10);
        let g = greedy_grouping(&ws, &config(0.3));
        let original = average_group_emd(&Grouping::singletons(100), &ws);
        let grouped = average_group_emd(&g, &ws);
        assert!((original - 1.8).abs() < 1e-9);
        assert!(
            grouped < 0.6 * original,
            "greedy grouping EMD {grouped} not much below original {original}"
        );
    }

    #[test]
    fn grouping_beats_singletons_on_the_objective() {
        let ws = heterogeneous_single_label_workers(50, 10);
        let cfg = config(0.3);
        let g = greedy_grouping(&ws, &cfg);
        let greedy_value = cfg.objective.evaluate(&g, &ws);
        let singleton_value = cfg.objective.evaluate(&Grouping::singletons(50), &ws);
        assert!(
            greedy_value <= singleton_value,
            "greedy {greedy_value} worse than singletons {singleton_value}"
        );
    }

    #[test]
    fn groups_cluster_similar_latencies() {
        // Fig. 7: workers within a group should have comparable latency.
        let ws = heterogeneous_single_label_workers(60, 10);
        let cfg = config(0.3);
        let g = greedy_grouping(&ws, &cfg);
        let spread = WorkerInfo::latency_spread(&ws);
        for j in 0..g.num_groups() {
            let members = g.group(j);
            let max = members
                .iter()
                .map(|&w| ws[w].local_training_time)
                .fold(f64::NEG_INFINITY, f64::max);
            let min = members
                .iter()
                .map(|&w| ws[w].local_training_time)
                .fold(f64::INFINITY, f64::min);
            assert!(max - min <= 0.3 * spread + 1e-9);
        }
    }

    #[test]
    fn deterministic_given_identical_input() {
        let ws = heterogeneous_single_label_workers(40, 10);
        let cfg = config(0.3);
        let a = greedy_grouping(&ws, &cfg);
        let b = greedy_grouping(&ws, &cfg);
        assert_eq!(a, b);
    }
}
