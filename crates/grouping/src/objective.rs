//! The training-time objective of problems (P2)/(P4).
//!
//! Section V converts the training-time minimisation (P1) into
//!
//! ```text
//! minimise  L(x) · (1 + τ̂_max) · log_B A                  (Eq. 40a)
//! subject to the ξ-constraint of Eq. (36d)
//! ```
//!
//! where, for a grouping `x`:
//!
//! * `L_j = max_{v_i∈V_j} l_i + L_u`  — group completion time (Eq. 34),
//! * `L = 1 / Σ_j (1/L_j)`            — average single-round time (Eq. 35),
//! * `ψ_j = (1/L_j) / Σ_{j'} (1/L_{j'})` — relative participation frequency,
//! * `τ̂_max = L_max · Σ_j (1/L_j)`    — estimated maximum staleness (Eq. 39),
//! * `B = 1 − (2µγ − µ/L_s) Σ_j ψ_j β_j`,
//! * `δ = Σ_j ψ_j β_j (γ L_s Λ_j² G² + L_s² C_max) / ((2µγL_s − µ) Σ_j ψ_j β_j)`,
//! * `A = (ε − δ) / (F(w_0) − F(w*))`,
//!
//! with `L_s` the smoothness constant, `µ` the strong-convexity constant, `γ`
//! the learning rate, `G²` the gradient bound, `C_max` the worst-case
//! aggregation error (Eq. 30) and `ε` the target optimality gap. When a
//! grouping makes the bound infeasible (δ ≥ ε, or the contraction factor
//! leaves `(0,1)`) the objective returns `+∞` so the greedy algorithm avoids
//! it.

use crate::worker_info::{
    slice_data_size, slice_label_distribution, slice_max_latency, Grouping, WorkerInfo,
};
use fedml::partition::LabelDistribution;
use serde::{Deserialize, Serialize};

/// Convergence-related constants of Theorem 1 used inside the objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveConstants {
    /// Strong-convexity constant `µ` (Assumption 2).
    pub mu: f64,
    /// Smoothness constant `L` (Assumption 1). Named `smoothness` to avoid
    /// clashing with the latency symbol `L`.
    pub smoothness: f64,
    /// Learning rate `γ`; Theorem 1 requires `1/(2L) < γ < 1/L`.
    pub gamma: f64,
    /// Gradient bound `G²` (Assumption 3).
    pub gradient_bound_sq: f64,
    /// Worst-case aggregation error `max_t C_t` (Eq. 30) after power control.
    pub aggregation_error: f64,
    /// Target optimality gap `ε` of constraint (36b).
    pub epsilon: f64,
    /// Initial optimality gap `F(w_0) − F(w*)`.
    pub initial_gap: f64,
}

impl Default for ObjectiveConstants {
    /// Defaults chosen so that the bound stays feasible (`δ < ε`) across the
    /// whole EMD range `Λ_j ∈ [0, 2]` of the paper's label-skew workloads,
    /// while still penalising skewed groups with a larger residual. They
    /// correspond to a well-conditioned logistic-regression task
    /// (`µ = 0.2`, `L = 1`, `γ = 0.75 ∈ (1/(2L), 1/L)`).
    fn default() -> Self {
        Self {
            mu: 0.4,
            smoothness: 1.0,
            gamma: 0.75,
            gradient_bound_sq: 0.1,
            aggregation_error: 0.01,
            epsilon: 1.272,
            initial_gap: 2.3,
        }
    }
}

impl ObjectiveConstants {
    /// Check Theorem 1's preconditions (`1/(2L) < γ < 1/L`, `µ > 0`, …).
    pub fn validate(&self) {
        assert!(self.mu > 0.0, "mu must be positive");
        assert!(self.smoothness > 0.0, "smoothness must be positive");
        assert!(
            self.gamma > 0.5 / self.smoothness && self.gamma < 1.0 / self.smoothness,
            "Theorem 1 requires 1/(2L) < gamma < 1/L, got gamma = {}",
            self.gamma
        );
        assert!(self.gradient_bound_sq >= 0.0, "G^2 must be non-negative");
        assert!(
            self.aggregation_error >= 0.0,
            "aggregation error must be non-negative"
        );
        assert!(self.epsilon > 0.0, "epsilon must be positive");
        assert!(self.initial_gap > 0.0, "initial gap must be positive");
    }
}

/// Evaluator for the grouping objective and the ξ-constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupingObjective {
    /// AirComp aggregation latency `L_u` (Eq. 33), in seconds.
    pub aggregation_time: f64,
    /// The ξ parameter of constraint (36d) (0 = fully asynchronous,
    /// 1 = a single group is always feasible latency-wise).
    pub xi: f64,
    /// Convergence constants.
    pub constants: ObjectiveConstants,
}

/// Breakdown of the objective evaluation, useful for reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveBreakdown {
    /// Average single-round latency `L` (Eq. 35).
    pub average_round_time: f64,
    /// Estimated maximum staleness `τ̂_max` (Eq. 39).
    pub estimated_staleness: f64,
    /// Estimated number of rounds `T = (1 + τ̂_max) log_B A` (Eq. 38).
    pub estimated_rounds: f64,
    /// The contraction base `B`.
    pub contraction: f64,
    /// The residual error `δ` of Theorem 1 under this grouping.
    pub residual: f64,
    /// The full objective `L · T` (estimated total training time, seconds).
    pub total_time: f64,
}

impl GroupingObjective {
    /// Create an objective evaluator.
    pub fn new(aggregation_time: f64, xi: f64, constants: ObjectiveConstants) -> Self {
        assert!(aggregation_time >= 0.0, "aggregation time must be >= 0");
        assert!((0.0..=1.0).contains(&xi), "xi must lie in [0, 1]");
        constants.validate();
        Self {
            aggregation_time,
            xi,
            constants,
        }
    }

    /// ξ-constraint check for a single candidate group given as a slice of
    /// worker indices (used by the greedy algorithm on partial assignments):
    /// `L_j − L_u − l_i ≤ ξ·Δl` for every member — equivalently the latency
    /// gap between the slowest member and any member is at most `ξ·Δl`,
    /// where `Δl` is the latency spread of the *whole* population.
    pub fn slice_satisfies_xi(&self, group: &[usize], workers: &[WorkerInfo]) -> bool {
        let spread = WorkerInfo::latency_spread(workers);
        let max_latency = slice_max_latency(group, workers);
        group
            .iter()
            .all(|&w| max_latency - workers[w].local_training_time <= self.xi * spread + 1e-12)
    }

    /// Does group `j` of `grouping` satisfy the ξ-constraint of Eq. (36d)?
    pub fn group_satisfies_xi(
        &self,
        grouping: &Grouping,
        group: usize,
        workers: &[WorkerInfo],
    ) -> bool {
        self.slice_satisfies_xi(grouping.group(group), workers)
    }

    /// Does every group satisfy the ξ-constraint?
    pub fn satisfies_xi(&self, grouping: &Grouping, workers: &[WorkerInfo]) -> bool {
        (0..grouping.num_groups()).all(|j| self.group_satisfies_xi(grouping, j, workers))
    }

    /// Evaluate the full objective. Returns `+∞` for groupings under which
    /// the convergence bound cannot reach the target gap `ε`.
    pub fn evaluate(&self, grouping: &Grouping, workers: &[WorkerInfo]) -> f64 {
        self.breakdown(grouping, workers)
            .map(|b| b.total_time)
            .unwrap_or(f64::INFINITY)
    }

    /// Evaluate the objective for an arbitrary (possibly partial) list of
    /// groups, returning `+∞` when infeasible. The greedy Algorithm 3 calls
    /// this on incrementally-built assignments.
    pub fn evaluate_groups(&self, groups: &[Vec<usize>], workers: &[WorkerInfo]) -> f64 {
        self.breakdown_groups(groups, workers)
            .map(|b| b.total_time)
            .unwrap_or(f64::INFINITY)
    }

    /// Evaluate the objective together with its intermediate quantities.
    /// Returns `None` when the grouping makes the bound infeasible.
    pub fn breakdown(
        &self,
        grouping: &Grouping,
        workers: &[WorkerInfo],
    ) -> Option<ObjectiveBreakdown> {
        self.breakdown_groups(grouping.groups(), workers)
    }

    /// [`GroupingObjective::breakdown`] over an arbitrary (possibly partial)
    /// list of groups.
    ///
    /// The latency spread `Δl` and the reference (global) label distribution
    /// are always computed over the *entire* worker population — they are
    /// properties of the problem, not of the assignment. The data fractions
    /// `β_j`, however, are normalised by the data assigned *so far*: during
    /// Algorithm 3's incremental construction this keeps `Σ_j ψ_j β_j` at a
    /// stable magnitude, so early placement decisions weigh the Non-IID
    /// residual (Corollary 1) and the round-frequency term on the same scale
    /// as they will be weighed in the final, complete grouping. For a
    /// complete grouping the two normalisations coincide.
    pub fn breakdown_groups(
        &self,
        groups: &[Vec<usize>],
        workers: &[WorkerInfo],
    ) -> Option<ObjectiveBreakdown> {
        if groups.is_empty() || groups.iter().any(|g| g.is_empty()) {
            return None;
        }
        let c = &self.constants;
        let completion: Vec<f64> = groups
            .iter()
            .map(|g| slice_max_latency(g, workers) + self.aggregation_time)
            .collect();
        debug_assert!(completion.iter().all(|&l| l > 0.0));
        let inv_sum: f64 = completion.iter().map(|l| 1.0 / l).sum();
        let average_round_time = 1.0 / inv_sum;
        let l_max = completion.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Eq. (39) estimates the maximum staleness as the number of global
        // updates that happen during the slowest group's round. We subtract
        // one so that a single group yields τ̂_max = 0, consistent with
        // Corollary 2 (M = 1 ⇒ τ_max = 0).
        let estimated_staleness = (l_max * inv_sum - 1.0).max(0.0);

        // Participation frequencies and data fractions (β_j normalised by
        // the data assigned so far; see the method docs).
        let assigned_data: usize = groups.iter().map(|g| slice_data_size(g, workers)).sum();
        let total_data = assigned_data as f64;
        let global = LabelDistribution::from_counts(&WorkerInfo::global_label_counts(workers));
        let mut psi_beta_sum = 0.0;
        let mut weighted_residual_numerator = 0.0;
        for (j, g) in groups.iter().enumerate() {
            let psi = (1.0 / completion[j]) / inv_sum;
            let beta = slice_data_size(g, workers) as f64 / total_data;
            let lambda = slice_label_distribution(g, workers).l1_distance(&global);
            psi_beta_sum += psi * beta;
            weighted_residual_numerator += psi
                * beta
                * (c.gamma * c.smoothness * lambda * lambda * c.gradient_bound_sq
                    + c.smoothness * c.smoothness * c.aggregation_error);
        }
        if psi_beta_sum <= 0.0 {
            return None;
        }

        // Contraction base B = 1 - (2 mu gamma - mu / L_s) * sum psi_j beta_j.
        let contraction = 1.0 - (2.0 * c.mu * c.gamma - c.mu / c.smoothness) * psi_beta_sum;
        if contraction <= 0.0 || contraction >= 1.0 {
            return None;
        }
        // Residual delta of Theorem 1.
        let residual = weighted_residual_numerator
            / ((2.0 * c.mu * c.gamma * c.smoothness - c.mu) * psi_beta_sum);
        if residual >= c.epsilon {
            return None;
        }
        let a = (c.epsilon - residual) / c.initial_gap;
        if a <= 0.0 || a >= 1.0 {
            return None;
        }
        // T >= (1 + tau_max) log_B A  (Eq. 38); both logs are negative.
        let estimated_rounds = (1.0 + estimated_staleness) * (a.ln() / contraction.ln());
        let total_time = average_round_time * estimated_rounds;
        Some(ObjectiveBreakdown {
            average_round_time,
            estimated_staleness,
            estimated_rounds,
            contraction,
            residual,
            total_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ten single-label workers with a 1..10 latency ladder.
    fn workers() -> Vec<WorkerInfo> {
        (0..10)
            .map(|i| {
                let mut counts = vec![0usize; 10];
                counts[i] = 50;
                WorkerInfo::new(i, 10.0 + 5.0 * i as f64, 50, counts)
            })
            .collect()
    }

    fn objective(xi: f64) -> GroupingObjective {
        GroupingObjective::new(0.5, xi, ObjectiveConstants::default())
    }

    #[test]
    fn constants_validation_enforces_gamma_window() {
        let mut c = ObjectiveConstants::default();
        c.validate();
        c.gamma = 1.5;
        let result = std::panic::catch_unwind(|| c.validate());
        assert!(result.is_err());
    }

    #[test]
    fn single_group_has_zero_staleness() {
        let ws = workers();
        let g = Grouping::single_group(10);
        let b = objective(1.0).breakdown(&g, &ws).expect("feasible");
        assert!(b.estimated_staleness.abs() < 1e-9);
        // One group => round time equals the slowest worker + L_u.
        assert!((b.average_round_time - 55.5).abs() < 1e-9);
    }

    #[test]
    fn more_groups_mean_shorter_rounds_but_more_staleness() {
        let ws = workers();
        let single = objective(1.0)
            .breakdown(&Grouping::single_group(10), &ws)
            .unwrap();
        let pairs = Grouping::new((0..5).map(|i| vec![2 * i, 2 * i + 1]).collect(), 10);
        let paired = objective(1.0).breakdown(&pairs, &ws).unwrap();
        assert!(paired.average_round_time < single.average_round_time);
        assert!(paired.estimated_staleness > single.estimated_staleness);
    }

    #[test]
    fn xi_constraint_detects_mixed_latency_groups() {
        let ws = workers();
        // Workers 0 (10s) and 9 (55s) in one group: gap 45 = full spread.
        let bad = Grouping::new(vec![vec![0, 9], (1..9).collect()], 10);
        assert!(!objective(0.3).satisfies_xi(&bad, &ws));
        assert!(objective(1.0).satisfies_xi(&bad, &ws));
        // Adjacent-latency pairs have gap 5 <= 0.3 * 45.
        let good = Grouping::new((0..5).map(|i| vec![2 * i, 2 * i + 1]).collect(), 10);
        assert!(objective(0.3).satisfies_xi(&good, &ws));
    }

    #[test]
    fn singletons_satisfy_xi_zero() {
        let ws = workers();
        assert!(objective(0.0).satisfies_xi(&Grouping::singletons(10), &ws));
        assert!(!objective(0.0).satisfies_xi(&Grouping::single_group(10), &ws));
    }

    #[test]
    fn iid_groups_beat_skewed_groups_in_residual() {
        let ws = workers();
        // Skewed: adjacent single-label workers (each group sees 2 labels).
        let skewed = Grouping::new((0..5).map(|i| vec![2 * i, 2 * i + 1]).collect(), 10);
        // Less skewed: pair fast+slow halves so the latency is bad but the
        // labels are spread the same; to isolate the EMD effect compare
        // against the single group (EMD 0).
        let single = Grouping::single_group(10);
        let obj = objective(1.0);
        let b_skewed = obj.breakdown(&skewed, &ws).unwrap();
        let b_single = obj.breakdown(&single, &ws).unwrap();
        assert!(b_single.residual < b_skewed.residual);
    }

    #[test]
    fn infeasible_when_epsilon_too_small() {
        let ws = workers();
        let c = ObjectiveConstants {
            // Residual error can never be below this target.
            epsilon: 1e-9,
            ..ObjectiveConstants::default()
        };
        let obj = GroupingObjective::new(0.5, 1.0, c);
        let skewed = Grouping::new((0..5).map(|i| vec![2 * i, 2 * i + 1]).collect(), 10);
        assert!(obj.evaluate(&skewed, &ws).is_infinite());
    }

    #[test]
    fn objective_is_finite_and_positive_for_reasonable_groupings() {
        let ws = workers();
        let obj = objective(1.0);
        for grouping in [
            Grouping::single_group(10),
            Grouping::singletons(10),
            Grouping::new((0..5).map(|i| vec![2 * i, 2 * i + 1]).collect(), 10),
        ] {
            let v = obj.evaluate(&grouping, &ws);
            assert!(v.is_finite() && v > 0.0, "objective {v} for {grouping:?}");
        }
    }
}
