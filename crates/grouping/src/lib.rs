//! # grouping — worker grouping for Air-FedGA
//!
//! Implements §V of the paper:
//!
//! * [`emd`] — the earth-mover distance `Λ_j = Σ_k |λ_k − β_j^k|` between a
//!   group's label distribution and the global one (Eq. (11)), the quantity
//!   Corollary 1 ties to the convergence residual and Table III reports.
//! * [`objective`] — the training-time objective `L(x)·(1 + τ̂_max)·log_B A`
//!   of problem (P2)/(P4) (Eq. (33)–(35), (39), (40a)) and the ξ-constraint
//!   of Eq. (36d).
//! * [`greedy`] — Algorithm 3: the greedy worker-grouping heuristic that
//!   assigns workers (sorted by data size) to the group minimising the
//!   current objective, opening a new group when that is better.
//! * [`tifl`] — the TiFL-style latency-tier grouping used as a baseline.
//!
//! The central data types are [`WorkerInfo`] (what the grouping algorithms
//! know about a worker: latency, data size, label counts) and [`Grouping`]
//! (a validated partition of workers into groups).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod emd;
pub mod greedy;
pub mod objective;
pub mod tifl;
pub mod worker_info;

pub use emd::{average_group_emd, group_emd};
pub use greedy::{greedy_grouping, GreedyGroupingConfig};
pub use objective::{GroupingObjective, ObjectiveConstants};
pub use tifl::tifl_grouping;
pub use worker_info::{Grouping, WorkerInfo};
