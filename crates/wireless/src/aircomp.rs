//! Over-the-air aggregation over a noisy fading MAC.
//!
//! When the workers of group `V_{j_t}` transmit simultaneously, each applies
//! the channel-inverting power rule of Eq. (6) (`p_i^t = d_i σ_t / h_i^t`), so
//! the signal received by the parameter server is the superposition of
//! Eq. (9):
//!
//! ```text
//! y_t = Σ_{v_i ∈ V_{j_t}} d_i σ_t w_i^t + z_t,      z_t ~ N(0, σ₀² I)
//! ```
//!
//! The parameter server forms the denoised group estimate
//! `w̃_j^t = y_t / (D_{j_t} √η_t)` which plugs into the asynchronous global
//! update of Eq. (10) / Eq. (16). This module performs that computation and
//! reports the per-round aggregation error `ε_j^t` (Eq. (17)) and the energy
//! spent by each worker (Eq. (7)).

use crate::energy::transmit_energy;
use crate::power::transmit_power;
use fedml::params::FlatParams;
use fedml::rng::Rng64;
use serde::{Deserialize, Serialize};

/// One worker's contribution to an over-the-air aggregation.
#[derive(Debug, Clone)]
pub struct AirAggregationInput<'a> {
    /// Worker data size `d_i` (the aggregation weight numerator).
    pub data_size: f64,
    /// Channel gain `h_i^t` for this round.
    pub channel_gain: f64,
    /// The worker's local model `w_i^t`.
    pub params: &'a FlatParams,
}

/// Result of one over-the-air aggregation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AirAggregationResult {
    /// The denoised group estimate `w̃_j^t = y_t / (D_j √η_t)`.
    pub group_estimate: FlatParams,
    /// The ideal (error-free) group model `Σ (d_i/D_j) w_i^t` of Eq. (15).
    pub ideal_group_model: FlatParams,
    /// Squared L2 norm of the aggregation error `ε_j^t` (Eq. (17)).
    pub error_norm_sq: f64,
    /// Energy `E_i^t` spent by each participating worker (Eq. (7)).
    pub per_worker_energy: Vec<f64>,
    /// Total data size `D_{j_t}` of the participants.
    pub group_data_size: f64,
}

impl AirAggregationResult {
    /// Mean squared error per model coordinate.
    pub fn mse(&self) -> f64 {
        self.error_norm_sq / self.group_estimate.dim() as f64
    }

    /// Total energy spent by the group in this aggregation.
    pub fn total_energy(&self) -> f64 {
        self.per_worker_energy.iter().sum()
    }
}

/// Reusable scratch for [`air_aggregate_into`]: the ideal-model buffer and
/// the per-worker energy vector that the allocating [`air_aggregate`] wrapper
/// would otherwise create fresh each round. One instance per engine loop,
/// reused across every round (buffers grow to the group/model size once and
/// stay there).
#[derive(Debug, Default)]
pub struct AirAggregationScratch {
    /// The ideal (error-free) group model `Σ (d_i/D_j) w_i^t` of Eq. (15),
    /// as of the most recent [`air_aggregate_into`] call.
    pub ideal: FlatParams,
    /// Energy `E_i^t` spent by each participating worker (Eq. (7)), in input
    /// order, as of the most recent call.
    pub per_worker_energy: Vec<f64>,
}

impl AirAggregationScratch {
    /// Create empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The scalar outputs of one in-place over-the-air aggregation (the vector
/// outputs land in the caller's estimate buffer and
/// [`AirAggregationScratch`]).
#[derive(Debug, Clone, Copy)]
pub struct AirAggregationStats {
    /// Squared L2 norm of the aggregation error `ε_j^t` (Eq. (17)).
    pub error_norm_sq: f64,
    /// Total data size `D_{j_t}` of the participants.
    pub group_data_size: f64,
}

/// Perform one over-the-air aggregation (Eq. (9) + the denoising of Eq. (10)).
///
/// * `sigma` / `eta` — the power-scaling and denoising factors chosen by
///   Algorithm 2 for this round.
/// * `noise_variance` — AWGN variance σ₀² at the server (0 disables noise).
///
/// Panics if the inputs are empty or have mismatched dimensions.
///
/// Allocating convenience wrapper around [`air_aggregate_into`]; the engine
/// loops call the `_into` variant with round-persistent buffers so the whole
/// AirComp round is allocation-free in steady state.
pub fn air_aggregate(
    inputs: &[AirAggregationInput<'_>],
    sigma: f64,
    eta: f64,
    noise_variance: f64,
    rng: &mut Rng64,
) -> AirAggregationResult {
    let dim = inputs.first().map_or(0, |c| c.params.dim());
    let mut group_estimate = FlatParams::zeros(dim);
    let mut scratch = AirAggregationScratch::new();
    let stats = air_aggregate_into(
        inputs,
        sigma,
        eta,
        noise_variance,
        rng,
        &mut group_estimate,
        &mut scratch,
    );
    AirAggregationResult {
        group_estimate,
        ideal_group_model: scratch.ideal,
        error_norm_sq: stats.error_norm_sq,
        per_worker_energy: scratch.per_worker_energy,
        group_data_size: stats.group_data_size,
    }
}

/// In-place variant of [`air_aggregate`]: writes the denoised group estimate
/// into `group_estimate` (resized to the model dimension) and the secondary
/// outputs into `scratch`, so the per-round engine loop performs **zero**
/// heap allocations once the buffers have grown to size. Bit-identical to
/// [`air_aggregate`] (same accumulation order, same RNG draw order).
pub fn air_aggregate_into(
    inputs: &[AirAggregationInput<'_>],
    sigma: f64,
    eta: f64,
    noise_variance: f64,
    rng: &mut Rng64,
    group_estimate: &mut FlatParams,
    scratch: &mut AirAggregationScratch,
) -> AirAggregationStats {
    air_aggregate_indexed_into(
        inputs.len(),
        |k| inputs[k].clone(),
        sigma,
        eta,
        noise_variance,
        rng,
        group_estimate,
        scratch,
    )
}

/// Gather variant of [`air_aggregate_into`]: the `count` contributions are
/// produced on demand by `input(k)` instead of being read from a
/// pre-collected slice.
///
/// This is what lets the engine loops drop their last steady-state heap
/// allocation on the AirComp path — the per-round
/// `Vec<AirAggregationInput>` that existed only to marry each member's
/// `(data_size, gain)` pair to a borrow of its local model. The engines now
/// pass `|k| AirAggregationInput { data_size: data_sizes[k], channel_gain:
/// gains[k], params: pool.local(members[k]) }` straight from their
/// round-persistent buffers. Bit-identical to the slice path: same
/// accumulation order (`k = 0, 1, …`), same RNG draw order.
#[allow(clippy::too_many_arguments)]
pub fn air_aggregate_indexed_into<'p>(
    count: usize,
    input: impl Fn(usize) -> AirAggregationInput<'p>,
    sigma: f64,
    eta: f64,
    noise_variance: f64,
    rng: &mut Rng64,
    group_estimate: &mut FlatParams,
    scratch: &mut AirAggregationScratch,
) -> AirAggregationStats {
    assert!(count > 0, "over-the-air aggregation with no workers");
    assert!(sigma > 0.0, "sigma must be positive");
    assert!(eta > 0.0, "eta must be positive");
    assert!(noise_variance >= 0.0, "noise variance must be non-negative");
    let dim = input(0).params.dim();
    let group_data_size: f64 = (0..count).map(|k| input(k).data_size).sum();
    assert!(group_data_size > 0.0, "group data size must be positive");

    // Received superposed signal y_t = sum_i d_i sigma w_i + z_t, accumulated
    // directly in the caller's estimate buffer.
    group_estimate.0.resize(dim, 0.0);
    group_estimate.as_mut_slice().fill(0.0);
    // Ideal group model sum_i (d_i / D_j) w_i.
    scratch.ideal.0.resize(dim, 0.0);
    scratch.ideal.as_mut_slice().fill(0.0);
    scratch.per_worker_energy.clear();
    for k in 0..count {
        let c = input(k);
        assert_eq!(c.params.dim(), dim, "parameter dimension mismatch");
        assert!(c.data_size > 0.0, "worker data size must be positive");
        group_estimate.axpy(c.data_size * sigma, c.params);
        scratch.ideal.axpy(c.data_size / group_data_size, c.params);
        let p = transmit_power(c.data_size, sigma, c.channel_gain);
        scratch.per_worker_energy.push(transmit_energy(p, c.params));
    }
    if noise_variance > 0.0 {
        let std = noise_variance.sqrt();
        rng.add_gaussian_noise(group_estimate.as_mut_slice(), std);
    }

    // Denoised group estimate w~ = y / (D_j sqrt(eta)).
    group_estimate.scale(1.0 / (group_data_size * eta.sqrt()));
    let error_norm_sq = group_estimate.dist_sq(&scratch.ideal);

    AirAggregationStats {
        error_norm_sq,
        group_data_size,
    }
}

/// Apply the asynchronous global update of Eq. (10)/(16):
/// `w_t = (1 − β_j) w_{t−1} + β_j w̃_j^t` where `β_j = D_j / D`.
pub fn apply_group_update(
    global: &FlatParams,
    group_estimate: &FlatParams,
    group_data_size: f64,
    total_data_size: f64,
) -> FlatParams {
    assert!(total_data_size > 0.0, "total data size must be positive");
    assert!(
        group_data_size > 0.0 && group_data_size <= total_data_size + 1e-9,
        "group data size must lie in (0, D]"
    );
    let beta = group_data_size / total_data_size;
    let mut out = global.clone();
    out.scale(1.0 - beta);
    out.axpy(beta, group_estimate);
    out
}

/// In-place variant of [`apply_group_update`]: updates `global` directly so
/// the per-round engine loop does not allocate a fresh `q`-length vector.
pub fn apply_group_update_in_place(
    global: &mut FlatParams,
    group_estimate: &FlatParams,
    group_data_size: f64,
    total_data_size: f64,
) {
    assert!(total_data_size > 0.0, "total data size must be positive");
    assert!(
        group_data_size > 0.0 && group_data_size <= total_data_size + 1e-9,
        "group data size must lie in (0, D]"
    );
    let beta = group_data_size / total_data_size;
    global.scale(1.0 - beta);
    global.axpy(beta, group_estimate);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(v: Vec<f64>) -> FlatParams {
        FlatParams(v)
    }

    #[test]
    fn noiseless_matched_factors_recover_ideal_average() {
        // With z = 0 and sigma = sqrt(eta), w~ = sum d_i w_i / D exactly.
        let a = params(vec![1.0, 0.0, 2.0]);
        let b = params(vec![3.0, 4.0, -2.0]);
        let inputs = vec![
            AirAggregationInput {
                data_size: 10.0,
                channel_gain: 1.0,
                params: &a,
            },
            AirAggregationInput {
                data_size: 30.0,
                channel_gain: 0.5,
                params: &b,
            },
        ];
        let mut rng = Rng64::seed_from(1);
        let res = air_aggregate(&inputs, 2.0, 4.0, 0.0, &mut rng);
        assert!(res.error_norm_sq < 1e-24, "error {}", res.error_norm_sq);
        let expected = FlatParams::weighted_sum(&[(0.25, &a), (0.75, &b)]);
        assert!(res.group_estimate.dist_sq(&expected) < 1e-24);
        assert_eq!(res.group_data_size, 40.0);
    }

    #[test]
    fn mismatched_factors_introduce_bias() {
        let a = params(vec![1.0; 8]);
        let inputs = vec![AirAggregationInput {
            data_size: 5.0,
            channel_gain: 1.0,
            params: &a,
        }];
        let mut rng = Rng64::seed_from(2);
        // sigma / sqrt(eta) = 0.5 -> estimate is half the ideal model.
        let res = air_aggregate(&inputs, 1.0, 4.0, 0.0, &mut rng);
        assert!(res.error_norm_sq > 0.0);
        assert!((res.group_estimate.0[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn noise_error_scales_inversely_with_group_size() {
        // Same per-worker models; the larger group's denominator D_j is
        // larger, so the noise-induced error shrinks.
        let w = params(vec![0.5; 64]);
        let mk = |n: usize| -> Vec<AirAggregationInput<'_>> {
            (0..n)
                .map(|_| AirAggregationInput {
                    data_size: 100.0,
                    channel_gain: 1.0,
                    params: &w,
                })
                .collect()
        };
        let small_inputs = mk(2);
        let large_inputs = mk(20);
        let mut err_small = 0.0;
        let mut err_large = 0.0;
        for seed in 0..20 {
            let mut rng = Rng64::seed_from(seed);
            err_small += air_aggregate(&small_inputs, 1.0, 1.0, 1.0, &mut rng).error_norm_sq;
            let mut rng = Rng64::seed_from(seed + 1000);
            err_large += air_aggregate(&large_inputs, 1.0, 1.0, 1.0, &mut rng).error_norm_sq;
        }
        assert!(
            err_large < err_small,
            "large-group error {err_large} should be below small-group error {err_small}"
        );
    }

    #[test]
    fn energy_accounting_matches_eq7() {
        let w = params(vec![2.0, 0.0]);
        let inputs = vec![AirAggregationInput {
            data_size: 4.0,
            channel_gain: 2.0,
            params: &w,
        }];
        let mut rng = Rng64::seed_from(3);
        let res = air_aggregate(&inputs, 1.0, 1.0, 0.0, &mut rng);
        // p = d*sigma/h = 2 ; E = ||p w||^2 = 4 * 4 = 16.
        assert_eq!(res.per_worker_energy.len(), 1);
        assert!((res.per_worker_energy[0] - 16.0).abs() < 1e-12);
        assert!((res.total_energy() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn apply_group_update_is_convex_combination() {
        let global = params(vec![0.0, 0.0]);
        let estimate = params(vec![1.0, 2.0]);
        let updated = apply_group_update(&global, &estimate, 25.0, 100.0);
        assert_eq!(updated.0, vec![0.25, 0.5]);
        // Full participation replaces the global model entirely.
        let replaced = apply_group_update(&global, &estimate, 100.0, 100.0);
        assert_eq!(replaced.0, estimate.0);
    }

    #[test]
    #[should_panic(expected = "no workers")]
    fn rejects_empty_group() {
        let mut rng = Rng64::seed_from(4);
        let _ = air_aggregate(&[], 1.0, 1.0, 0.0, &mut rng);
    }

    #[test]
    fn into_variant_is_bit_identical_and_reuses_buffers() {
        let a = params(vec![1.0, -0.5, 2.0, 0.25]);
        let b = params(vec![3.0, 4.0, -2.0, 1.5]);
        let inputs = vec![
            AirAggregationInput {
                data_size: 10.0,
                channel_gain: 0.8,
                params: &a,
            },
            AirAggregationInput {
                data_size: 30.0,
                channel_gain: 0.5,
                params: &b,
            },
        ];
        let mut estimate = FlatParams::zeros(0);
        let mut scratch = AirAggregationScratch::new();
        for round in 0..3 {
            // Same rng seed each round: the in-place path must consume the
            // exact same draw sequence as the allocating one.
            let mut rng_a = Rng64::seed_from(100 + round);
            let mut rng_b = Rng64::seed_from(100 + round);
            let res = air_aggregate(&inputs, 1.3, 1.7, 0.2, &mut rng_a);
            let stats = air_aggregate_into(
                &inputs,
                1.3,
                1.7,
                0.2,
                &mut rng_b,
                &mut estimate,
                &mut scratch,
            );
            assert_eq!(stats.group_data_size, res.group_data_size);
            assert_eq!(stats.error_norm_sq.to_bits(), res.error_norm_sq.to_bits());
            for (x, y) in estimate.0.iter().zip(res.group_estimate.0.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in scratch.ideal.0.iter().zip(res.ideal_group_model.0.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(scratch.per_worker_energy, res.per_worker_energy);
        }
        // Steady state: buffers settled at the model dimension, no regrowth.
        assert_eq!(estimate.dim(), 4);
        assert_eq!(scratch.ideal.dim(), 4);
        assert!(scratch.per_worker_energy.capacity() >= 2);
    }

    #[test]
    fn indexed_gather_is_bit_identical_to_the_slice_and_allocating_paths() {
        // The engines gather inputs on demand from separate (data_size, gain,
        // params) buffers; that path must consume the same RNG stream and
        // produce the same bits as both existing entry points.
        let a = params(vec![0.7, -1.5, 2.25, 0.125]);
        let b = params(vec![3.5, 4.0, -2.0, 1.75]);
        let c = params(vec![-0.25, 0.5, 1.0, -1.125]);
        let models = [&a, &b, &c];
        let data_sizes = [10.0, 30.0, 25.0];
        let gains = [0.8, 0.5, 1.2];
        let inputs: Vec<AirAggregationInput<'_>> = (0..3)
            .map(|k| AirAggregationInput {
                data_size: data_sizes[k],
                channel_gain: gains[k],
                params: models[k],
            })
            .collect();
        for round in 0..3u64 {
            let mut rng_a = Rng64::seed_from(500 + round);
            let mut rng_b = Rng64::seed_from(500 + round);
            let res = air_aggregate(&inputs, 1.1, 1.9, 0.3, &mut rng_a);
            let mut estimate = FlatParams::zeros(0);
            let mut scratch = AirAggregationScratch::new();
            let stats = air_aggregate_indexed_into(
                3,
                |k| AirAggregationInput {
                    data_size: data_sizes[k],
                    channel_gain: gains[k],
                    params: models[k],
                },
                1.1,
                1.9,
                0.3,
                &mut rng_b,
                &mut estimate,
                &mut scratch,
            );
            assert_eq!(stats.group_data_size, res.group_data_size);
            assert_eq!(stats.error_norm_sq.to_bits(), res.error_norm_sq.to_bits());
            for (x, y) in estimate.0.iter().zip(res.group_estimate.0.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in scratch.ideal.0.iter().zip(res.ideal_group_model.0.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(scratch.per_worker_energy, res.per_worker_energy);
        }
    }

    #[test]
    fn mse_is_error_over_dimension() {
        let w = params(vec![1.0; 10]);
        let inputs = vec![AirAggregationInput {
            data_size: 1.0,
            channel_gain: 1.0,
            params: &w,
        }];
        let mut rng = Rng64::seed_from(5);
        let res = air_aggregate(&inputs, 1.0, 1.0, 0.5, &mut rng);
        assert!((res.mse() - res.error_norm_sq / 10.0).abs() < 1e-15);
    }
}
