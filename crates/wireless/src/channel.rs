//! Wireless channel gain models.
//!
//! The paper assumes the channel gain `h_i^t` between worker `v_i` and the
//! parameter server stays constant within a communication round (block
//! fading) and is known at both ends (needed for the power-scaling rule of
//! Eq. (6)). We model Rayleigh block fading — `|h|` is Rayleigh distributed,
//! equivalently `|h|²` is exponential — plus a deterministic variant for
//! tests and ablations.

use fedml::rng::Rng64;
use serde::{Deserialize, Serialize};

/// A model of per-round channel gains for a population of workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChannelModel {
    /// Rayleigh block fading: per round, `h_i^t = sqrt(Exp(1)) * sqrt(mean_gain_i)`
    /// where `mean_gain_i` captures the (distance-dependent) average path
    /// gain of worker `i`. A floor keeps gains bounded away from zero so the
    /// inverse-channel power rule of Eq. (6) stays finite.
    Rayleigh {
        /// Average power gain per worker (same value reused for all workers
        /// if the vector is shorter than the worker count).
        mean_gains: Vec<f64>,
        /// Lower bound on the realised gain (deep-fade clipping).
        floor: f64,
    },
    /// Deterministic static gains — useful for unit tests and for isolating
    /// the effect of heterogeneity from the effect of fading.
    Static {
        /// Fixed gain per worker.
        gains: Vec<f64>,
    },
}

impl ChannelModel {
    /// A Rayleigh model with unit average gain for every one of `n` workers,
    /// the configuration used by the paper's experiments.
    ///
    /// The floor of 0.3 implements truncated channel inversion: the
    /// channel-inverting power rule of Eq. (6) caps the power-scaling factor
    /// by the *worst* gain in the group, so un-truncated deep fades would
    /// force the whole group's received SNR to zero. Truncation is the
    /// standard remedy in the AirComp literature the paper builds on.
    pub fn default_rayleigh(n: usize) -> Self {
        ChannelModel::Rayleigh {
            mean_gains: vec![1.0; n],
            floor: 0.3,
        }
    }

    /// A unit-gain noiseless-friendly static channel for `n` workers.
    pub fn unit(n: usize) -> Self {
        ChannelModel::Static {
            gains: vec![1.0; n],
        }
    }

    /// Number of workers the model was configured for.
    pub fn num_workers(&self) -> usize {
        match self {
            ChannelModel::Rayleigh { mean_gains, .. } => mean_gains.len(),
            ChannelModel::Static { gains } => gains.len(),
        }
    }

    /// Draw the channel gains `h_i^t` of every worker for one round.
    pub fn draw_round(&self, rng: &mut Rng64) -> Vec<f64> {
        match self {
            ChannelModel::Rayleigh { mean_gains, floor } => mean_gains
                .iter()
                .map(|&g| {
                    // |h|^2 ~ Exp(1) scaled by the mean power gain.
                    let power = rng.exponential(1.0) * g;
                    power.sqrt().max(*floor)
                })
                .collect(),
            ChannelModel::Static { gains } => gains.clone(),
        }
    }

    /// Draw the gain of a single worker for one round.
    pub fn draw_worker(&self, worker: usize, rng: &mut Rng64) -> f64 {
        match self {
            ChannelModel::Rayleigh { mean_gains, floor } => {
                let g = mean_gains[worker % mean_gains.len()];
                (rng.exponential(1.0) * g).sqrt().max(*floor)
            }
            ChannelModel::Static { gains } => gains[worker % gains.len()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_channel_is_deterministic() {
        let m = ChannelModel::Static {
            gains: vec![0.5, 2.0],
        };
        let mut rng = Rng64::seed_from(1);
        assert_eq!(m.draw_round(&mut rng), vec![0.5, 2.0]);
        assert_eq!(m.draw_round(&mut rng), vec![0.5, 2.0]);
        assert_eq!(m.draw_worker(0, &mut rng), 0.5);
    }

    #[test]
    fn rayleigh_gains_are_positive_and_respect_floor() {
        let m = ChannelModel::Rayleigh {
            mean_gains: vec![1.0; 50],
            floor: 0.1,
        };
        let mut rng = Rng64::seed_from(2);
        for _ in 0..20 {
            let gains = m.draw_round(&mut rng);
            assert_eq!(gains.len(), 50);
            assert!(gains.iter().all(|&h| h >= 0.1));
        }
    }

    #[test]
    fn rayleigh_mean_power_tracks_mean_gain() {
        let m = ChannelModel::Rayleigh {
            mean_gains: vec![4.0],
            floor: 1e-6,
        };
        let mut rng = Rng64::seed_from(3);
        let n = 20_000;
        let mean_power: f64 = (0..n)
            .map(|_| {
                let h = m.draw_worker(0, &mut rng);
                h * h
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean_power - 4.0).abs() < 0.15,
            "mean |h|^2 = {mean_power}, expected 4"
        );
    }

    #[test]
    fn default_rayleigh_covers_all_workers() {
        let m = ChannelModel::default_rayleigh(7);
        assert_eq!(m.num_workers(), 7);
        let mut rng = Rng64::seed_from(4);
        assert_eq!(m.draw_round(&mut rng).len(), 7);
    }
}
