//! Communication latency models.
//!
//! Two families of schemes appear in the evaluation:
//!
//! * **AirComp** (Air-FedGA, Air-FedAvg, Dynamic): every participating worker
//!   transmits simultaneously, so the aggregation latency is independent of
//!   the number of participants — Eq. (33): `L_u = (q / R) · L_s` where `q` is
//!   the model dimension, `R` the number of sub-channels and `L_s` the OFDM
//!   symbol duration.
//! * **OMA** (FedAvg, TiFL): workers upload their models one at a time (TDMA)
//!   or by splitting the band (OFDMA); either way the total upload latency of
//!   a round grows linearly with the number of uploaders, which is the
//!   scalability bottleneck Fig. 10 demonstrates.

use serde::{Deserialize, Serialize};

/// Orthogonal multiple-access flavours used by the non-AirComp baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OmaScheme {
    /// Time-division: uploads are serialised, each at the full link rate.
    Tdma,
    /// Frequency-division: uploads are concurrent but each gets `1/n` of the
    /// band, so the completion time of the round is the same as TDMA while
    /// individual uploads finish together.
    Ofdma,
}

/// Physical-layer constants shared by all mechanisms. Defaults follow
/// §VI.A.2 of the paper: bandwidth `B = 1 MHz`, noise variance `σ₀² = 1 W`,
/// per-round energy budget `Ê_i = 10 J`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WirelessConfig {
    /// Channel bandwidth in Hz.
    pub bandwidth_hz: f64,
    /// AWGN variance σ₀² at the parameter server (W).
    pub noise_variance: f64,
    /// Per-worker, per-round energy budget Ê_i (J).
    pub energy_budget: f64,
    /// Number of OFDM sub-channels `R` used by AirComp aggregation.
    pub subchannels: usize,
    /// OFDM symbol duration `L_s` (seconds).
    pub symbol_duration: f64,
    /// Bits used to encode one model parameter in OMA digital uploads.
    pub bits_per_param: f64,
    /// Spectral efficiency of OMA digital uploads (bits/s/Hz).
    pub spectral_efficiency: f64,
    /// Latency of broadcasting the global model back to a group (seconds).
    /// The downlink is a broadcast channel, so this is independent of the
    /// number of receivers; the paper folds it into the round time.
    pub broadcast_latency: f64,
}

impl Default for WirelessConfig {
    fn default() -> Self {
        Self {
            bandwidth_hz: 1.0e6,
            noise_variance: 1.0,
            energy_budget: 10.0,
            subchannels: 256,
            symbol_duration: 1.0e-3,
            bits_per_param: 32.0,
            spectral_efficiency: 1.0,
            broadcast_latency: 0.05,
        }
    }
}

impl WirelessConfig {
    /// Named physical-layer presets, the string-keyed channel components of
    /// the scenario registry. Returns `None` for an unknown name (see
    /// [`WirelessConfig::preset_names`]).
    ///
    /// * `"paper"` — the paper's §VI.A.2 constants verbatim (`σ₀² = 1 W`).
    /// * `"calibrated"` — the paper's constants with the noise variance
    ///   scaled to `10⁻⁵ W`, matching the surrogate-model calibration the
    ///   figure workloads use (see `FlSystemConfig::mnist_lr`).
    /// * `"noisy"` — the calibrated preset with 100× the noise power, for
    ///   stress scenarios probing AirComp error sensitivity.
    /// * `"wideband"` — 10× bandwidth and 4× sub-channels, shrinking both
    ///   OMA upload and AirComp aggregation latencies.
    pub fn preset(name: &str) -> Option<WirelessConfig> {
        match name {
            "paper" => Some(Self::default()),
            "calibrated" => Some(Self {
                noise_variance: 1.0e-5,
                ..Self::default()
            }),
            "noisy" => Some(Self {
                noise_variance: 1.0e-3,
                ..Self::default()
            }),
            "wideband" => Some(Self {
                bandwidth_hz: 1.0e7,
                subchannels: 1024,
                ..Self::default()
            }),
            _ => None,
        }
    }

    /// The names [`WirelessConfig::preset`] accepts.
    pub fn preset_names() -> &'static [&'static str] {
        &["paper", "calibrated", "noisy", "wideband"]
    }

    /// Panic with a descriptive message on inconsistent constants.
    pub fn validate(&self) {
        assert!(self.bandwidth_hz > 0.0, "bandwidth must be positive");
        assert!(self.noise_variance >= 0.0, "noise variance must be >= 0");
        assert!(self.energy_budget > 0.0, "energy budget must be positive");
        assert!(self.subchannels > 0, "subchannel count must be positive");
        assert!(
            self.symbol_duration > 0.0,
            "symbol duration must be positive"
        );
        assert!(
            self.bits_per_param > 0.0,
            "bits per parameter must be positive"
        );
        assert!(
            self.spectral_efficiency > 0.0,
            "spectral efficiency must be positive"
        );
        assert!(
            self.broadcast_latency >= 0.0,
            "broadcast latency must be >= 0"
        );
    }

    /// AirComp aggregation latency `L_u = (q / R) · L_s` (Eq. (33)). The
    /// ceiling accounts for the last partially-filled OFDM symbol.
    pub fn aircomp_aggregation_time(&self, model_dim: usize) -> f64 {
        assert!(model_dim > 0, "model dimension must be positive");
        let symbols = (model_dim as f64 / self.subchannels as f64).ceil();
        symbols * self.symbol_duration
    }

    /// Time for a single worker to upload `model_dim` parameters digitally at
    /// the full link rate.
    pub fn oma_single_upload_time(&self, model_dim: usize) -> f64 {
        assert!(model_dim > 0, "model dimension must be positive");
        let bits = model_dim as f64 * self.bits_per_param;
        bits / (self.bandwidth_hz * self.spectral_efficiency)
    }

    /// Total upload latency of one OMA round with `num_uploaders` workers.
    /// Both TDMA and OFDMA serialise the aggregate air-time, so the round
    /// completion time scales linearly with the number of uploaders.
    pub fn oma_round_upload_time(
        &self,
        scheme: OmaScheme,
        model_dim: usize,
        num_uploaders: usize,
    ) -> f64 {
        assert!(num_uploaders > 0, "need at least one uploader");
        let single = self.oma_single_upload_time(model_dim);
        match scheme {
            OmaScheme::Tdma | OmaScheme::Ofdma => single * num_uploaders as f64,
        }
    }

    /// Ratio between one OMA round's upload latency and one AirComp
    /// aggregation — the headline communication saving of AirComp.
    pub fn aircomp_speedup(&self, model_dim: usize, num_uploaders: usize) -> f64 {
        self.oma_round_upload_time(OmaScheme::Tdma, model_dim, num_uploaders)
            / self.aircomp_aggregation_time(model_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = WirelessConfig::default();
        c.validate();
        assert_eq!(c.bandwidth_hz, 1.0e6);
        assert_eq!(c.noise_variance, 1.0);
        assert_eq!(c.energy_budget, 10.0);
    }

    #[test]
    fn presets_cover_every_listed_name_and_validate() {
        for name in WirelessConfig::preset_names() {
            let c = WirelessConfig::preset(name)
                .unwrap_or_else(|| panic!("listed preset {name:?} missing"));
            c.validate();
        }
        assert_eq!(
            WirelessConfig::preset("paper"),
            Some(WirelessConfig::default())
        );
        assert_eq!(
            WirelessConfig::preset("calibrated").unwrap().noise_variance,
            1.0e-5
        );
        assert!(WirelessConfig::preset("nonsense").is_none());
    }

    #[test]
    fn aircomp_time_is_independent_of_uploaders() {
        let c = WirelessConfig::default();
        let t = c.aircomp_aggregation_time(10_000);
        // (10000 / 256).ceil() = 40 symbols of 1 ms.
        assert!((t - 0.040).abs() < 1e-12);
    }

    #[test]
    fn oma_time_scales_linearly_with_workers() {
        let c = WirelessConfig::default();
        let one = c.oma_round_upload_time(OmaScheme::Tdma, 10_000, 1);
        let hundred = c.oma_round_upload_time(OmaScheme::Tdma, 10_000, 100);
        assert!((hundred / one - 100.0).abs() < 1e-9);
        // 10k params * 32 bits / 1 Mbit/s = 0.32 s.
        assert!((one - 0.32).abs() < 1e-12);
    }

    #[test]
    fn ofdma_and_tdma_round_times_match() {
        let c = WirelessConfig::default();
        assert_eq!(
            c.oma_round_upload_time(OmaScheme::Tdma, 5_000, 10),
            c.oma_round_upload_time(OmaScheme::Ofdma, 5_000, 10)
        );
    }

    #[test]
    fn aircomp_speedup_grows_with_population() {
        let c = WirelessConfig::default();
        assert!(c.aircomp_speedup(10_000, 100) > c.aircomp_speedup(10_000, 10));
        assert!(c.aircomp_speedup(10_000, 100) > 100.0);
    }

    #[test]
    #[should_panic(expected = "model dimension must be positive")]
    fn rejects_zero_dimension() {
        let c = WirelessConfig::default();
        let _ = c.aircomp_aggregation_time(0);
    }
}
