//! Transmit-energy accounting.
//!
//! Eq. (7) of the paper models the per-round transmission energy of worker
//! `v_i` as `E_i^t = ‖p_i^t w_i^t‖²` — the squared norm of the power-scaled
//! analog waveform. Fig. 9 of the evaluation compares the cumulative
//! aggregation energy of the AirComp-based mechanisms; this module provides
//! the primitive plus a small accumulator used by the simulators.

use fedml::params::FlatParams;
use serde::{Deserialize, Serialize};

/// Per-round transmit energy `E_i^t = ‖p_i^t · w_i^t‖²` (Eq. (7)).
pub fn transmit_energy(transmit_power: f64, params: &FlatParams) -> f64 {
    assert!(transmit_power >= 0.0, "transmit power must be non-negative");
    transmit_power * transmit_power * params.norm_sq()
}

/// Cumulative energy bookkeeping across a training run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EnergyLedger {
    per_worker: Vec<f64>,
    total: f64,
    rounds_recorded: usize,
}

impl EnergyLedger {
    /// Create a ledger for `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        Self {
            per_worker: vec![0.0; num_workers],
            total: 0.0,
            rounds_recorded: 0,
        }
    }

    /// Record the energy spent by one worker in one aggregation.
    pub fn record(&mut self, worker: usize, energy: f64) {
        assert!(worker < self.per_worker.len(), "worker index out of range");
        assert!(
            energy >= 0.0 && energy.is_finite(),
            "energy must be a finite non-negative number"
        );
        self.per_worker[worker] += energy;
        self.total += energy;
    }

    /// Record that one aggregation round completed (for averaging).
    pub fn finish_round(&mut self) {
        self.rounds_recorded += 1;
    }

    /// Total energy spent by all workers so far (Joules).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Energy spent by a single worker so far.
    pub fn worker_total(&self, worker: usize) -> f64 {
        self.per_worker[worker]
    }

    /// Number of aggregation rounds recorded.
    pub fn rounds(&self) -> usize {
        self.rounds_recorded
    }

    /// Average energy per recorded round.
    pub fn average_per_round(&self) -> f64 {
        if self.rounds_recorded == 0 {
            0.0
        } else {
            self.total / self.rounds_recorded as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_matches_closed_form() {
        let w = FlatParams(vec![3.0, 4.0]); // norm^2 = 25
        assert_eq!(transmit_energy(2.0, &w), 100.0);
        assert_eq!(transmit_energy(0.0, &w), 0.0);
    }

    #[test]
    fn ledger_accumulates_and_averages() {
        let mut ledger = EnergyLedger::new(3);
        ledger.record(0, 5.0);
        ledger.record(2, 7.0);
        ledger.finish_round();
        ledger.record(0, 1.0);
        ledger.finish_round();
        assert_eq!(ledger.total(), 13.0);
        assert_eq!(ledger.worker_total(0), 6.0);
        assert_eq!(ledger.worker_total(1), 0.0);
        assert_eq!(ledger.rounds(), 2);
        assert!((ledger.average_per_round() - 6.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "worker index out of range")]
    fn ledger_rejects_bad_worker() {
        let mut ledger = EnergyLedger::new(1);
        ledger.record(5, 1.0);
    }

    #[test]
    fn empty_ledger_has_zero_average() {
        let ledger = EnergyLedger::new(2);
        assert_eq!(ledger.average_per_round(), 0.0);
    }
}
