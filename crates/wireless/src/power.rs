//! Power control — Algorithm 2 of the paper.
//!
//! Within one round `t` only the aggregation-error term
//!
//! ```text
//! C_t = (σ_t/√η_t − 1)² W_t² + σ₀² / (D_{j_t}² η_t)        (Eq. 30)
//! ```
//!
//! depends on the power-scaling factor `σ_t` (applied by workers, Eq. (6)) and
//! the denoising factor `η_t` (applied by the parameter server, Eq. (10)).
//! Problem (P3) minimises `C_t` subject to each worker's per-round energy
//! budget `E_i^t = ‖p_i^t w_i^t‖² ≤ Ê_i`. Algorithm 2 alternates between the
//! closed-form optima
//!
//! * `η_t = ((σ_t² W_t² + σ₀²/D_{j_t}²) / (σ_t W_t²))²` (Eq. (44)) and
//! * `σ_t = min{ √η_t } ∪ { h_i^t √Ê_i / (d_i W_t) : ∀v_i }` (Eq. (47))
//!
//! until both factors converge.

use serde::{Deserialize, Serialize};

/// Per-round inputs of the power-control problem (P3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerControlConfig {
    /// Upper bound `W_t` on the model norm `‖w_i^t‖` (Assumption 4).
    pub model_norm_bound: f64,
    /// Noise variance `σ₀²` of the AWGN at the parameter server.
    pub noise_variance: f64,
    /// Total data size `D_{j_t}` of the participating group.
    pub group_data_size: f64,
    /// Per-worker data sizes `d_i` of the participating workers.
    pub data_sizes: Vec<f64>,
    /// Per-worker channel gains `h_i^t` for this round.
    pub channel_gains: Vec<f64>,
    /// Per-worker energy budgets `Ê_i` (Joules per round).
    pub energy_budgets: Vec<f64>,
    /// Relative convergence threshold `θ` of Algorithm 2.
    pub tolerance: f64,
    /// Safety cap on alternating-optimisation iterations.
    pub max_iterations: usize,
}

impl PowerControlConfig {
    /// Construct the configuration for a participating group using the
    /// paper's default constants (σ₀² = 1 W, Ê_i = 10 J, θ = 1e-6).
    ///
    /// Takes the per-worker vectors by slice (they are copied into the
    /// config); the round loop of the mechanism engines keeps one config
    /// alive and refreshes it with [`PowerControlConfig::set_group`] instead,
    /// so no per-round vectors are allocated.
    pub fn for_group(model_norm_bound: f64, data_sizes: &[f64], channel_gains: &[f64]) -> Self {
        let n = data_sizes.len();
        let group_data_size = data_sizes.iter().sum();
        Self {
            model_norm_bound,
            noise_variance: 1.0,
            group_data_size,
            data_sizes: data_sizes.to_vec(),
            channel_gains: channel_gains.to_vec(),
            energy_budgets: vec![10.0; n],
            tolerance: 1e-6,
            max_iterations: 200,
        }
    }

    /// Refresh an existing configuration for a new round's participating
    /// group, reusing the config's internal buffers. `energy_budget` is
    /// applied uniformly to all members (the engines use the system-wide
    /// per-round budget Ê). Steady-state calls allocate nothing once the
    /// buffers have grown to the largest group size.
    pub fn set_group(
        &mut self,
        model_norm_bound: f64,
        data_sizes: &[f64],
        channel_gains: &[f64],
        energy_budget: f64,
    ) {
        assert_eq!(
            data_sizes.len(),
            channel_gains.len(),
            "channel gains length mismatch"
        );
        self.model_norm_bound = model_norm_bound;
        self.group_data_size = data_sizes.iter().sum();
        self.data_sizes.clear();
        self.data_sizes.extend_from_slice(data_sizes);
        self.channel_gains.clear();
        self.channel_gains.extend_from_slice(channel_gains);
        self.energy_budgets.clear();
        self.energy_budgets.resize(data_sizes.len(), energy_budget);
    }

    /// Panic with a descriptive message if the configuration is inconsistent.
    pub fn validate(&self) {
        assert!(
            self.model_norm_bound > 0.0 && self.model_norm_bound.is_finite(),
            "model norm bound must be positive"
        );
        assert!(self.noise_variance >= 0.0, "noise variance must be >= 0");
        assert!(
            self.group_data_size > 0.0,
            "group data size must be positive"
        );
        let n = self.data_sizes.len();
        assert!(n > 0, "power control needs at least one worker");
        assert_eq!(self.channel_gains.len(), n, "channel gains length mismatch");
        assert_eq!(
            self.energy_budgets.len(),
            n,
            "energy budgets length mismatch"
        );
        assert!(
            self.data_sizes.iter().all(|&d| d > 0.0),
            "data sizes must be positive"
        );
        assert!(
            self.channel_gains.iter().all(|&h| h > 0.0),
            "channel gains must be positive"
        );
        assert!(
            self.energy_budgets.iter().all(|&e| e > 0.0),
            "energy budgets must be positive"
        );
        assert!(self.tolerance > 0.0, "tolerance must be positive");
        assert!(self.max_iterations > 0, "max_iterations must be positive");
    }

    /// The tightest energy-imposed upper bound on σ_t (the second member of
    /// the min in Eq. (47)).
    pub fn sigma_energy_cap(&self) -> f64 {
        self.data_sizes
            .iter()
            .zip(self.channel_gains.iter())
            .zip(self.energy_budgets.iter())
            .map(|((&d, &h), &e)| h * e.sqrt() / (d * self.model_norm_bound))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Output of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSolution {
    /// Converged power-scaling factor `σ_t*`.
    pub sigma: f64,
    /// Converged denoising factor `η_t*`.
    pub eta: f64,
    /// Value of the aggregation-error term `C_t` at the solution.
    pub cost: f64,
    /// Number of alternating-optimisation iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before `max_iterations`.
    pub converged: bool,
}

/// The aggregation-error term `C_t` of Eq. (30).
pub fn aggregation_error_term(
    sigma: f64,
    eta: f64,
    model_norm_bound: f64,
    noise_variance: f64,
    group_data_size: f64,
) -> f64 {
    assert!(eta > 0.0, "eta must be positive");
    let misalignment = sigma / eta.sqrt() - 1.0;
    misalignment * misalignment * model_norm_bound * model_norm_bound
        + noise_variance / (group_data_size * group_data_size * eta)
}

/// Closed-form optimal denoising factor for a fixed σ (Eq. (44)).
pub fn optimal_eta_for_sigma(
    sigma: f64,
    model_norm_bound: f64,
    noise_variance: f64,
    group_data_size: f64,
) -> f64 {
    let w2 = model_norm_bound * model_norm_bound;
    let noise_term = noise_variance / (group_data_size * group_data_size);
    let numerator = sigma * sigma * w2 + noise_term;
    let denominator = sigma * w2;
    (numerator / denominator).powi(2)
}

/// Closed-form optimal power-scaling factor for a fixed η (Eq. (47)).
pub fn optimal_sigma_for_eta(eta: f64, cfg: &PowerControlConfig) -> f64 {
    eta.sqrt().min(cfg.sigma_energy_cap())
}

/// Run Algorithm 2: alternating optimisation of `(σ_t, η_t)`.
///
/// The initial σ is the energy cap (the most power every worker can afford),
/// which is always feasible; the iteration then walks both factors to a
/// stationary point of (P3).
pub fn optimize_power(cfg: &PowerControlConfig) -> PowerSolution {
    cfg.validate();
    let mut sigma = cfg.sigma_energy_cap();
    let mut eta = optimal_eta_for_sigma(
        sigma,
        cfg.model_norm_bound,
        cfg.noise_variance,
        cfg.group_data_size,
    );
    let mut iterations = 0;
    let mut converged = false;
    while iterations < cfg.max_iterations {
        iterations += 1;
        let prev_sigma = sigma;
        let prev_eta = eta;
        eta = optimal_eta_for_sigma(
            sigma,
            cfg.model_norm_bound,
            cfg.noise_variance,
            cfg.group_data_size,
        );
        sigma = optimal_sigma_for_eta(eta, cfg);
        let sigma_rel = (sigma - prev_sigma).abs() / prev_sigma.max(f64::MIN_POSITIVE);
        let eta_rel = (eta - prev_eta).abs() / prev_eta.max(f64::MIN_POSITIVE);
        if sigma_rel <= cfg.tolerance && eta_rel <= cfg.tolerance {
            converged = true;
            break;
        }
    }
    let cost = aggregation_error_term(
        sigma,
        eta,
        cfg.model_norm_bound,
        cfg.noise_variance,
        cfg.group_data_size,
    );
    PowerSolution {
        sigma,
        eta,
        cost,
        iterations,
        converged,
    }
}

/// Per-worker transmit power `p_i^t = d_i σ_t / h_i^t` (Eq. (6)).
pub fn transmit_power(data_size: f64, sigma: f64, channel_gain: f64) -> f64 {
    assert!(channel_gain > 0.0, "channel gain must be positive");
    data_size * sigma / channel_gain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> PowerControlConfig {
        PowerControlConfig::for_group(1.5, &[100.0, 80.0, 120.0], &[0.9, 1.2, 0.6])
    }

    #[test]
    fn algorithm_converges() {
        let sol = optimize_power(&small_cfg());
        assert!(sol.converged, "power control did not converge: {sol:?}");
        assert!(sol.sigma > 0.0 && sol.eta > 0.0);
        assert!(sol.cost.is_finite() && sol.cost >= 0.0);
    }

    #[test]
    fn solution_respects_energy_budgets() {
        let cfg = small_cfg();
        let sol = optimize_power(&cfg);
        for ((&d, &h), &e) in cfg
            .data_sizes
            .iter()
            .zip(cfg.channel_gains.iter())
            .zip(cfg.energy_budgets.iter())
        {
            let p = transmit_power(d, sol.sigma, h);
            // E_i = ||p w||^2 <= p^2 * W^2 must be within budget.
            let energy = p * p * cfg.model_norm_bound * cfg.model_norm_bound;
            assert!(
                energy <= e * (1.0 + 1e-9),
                "energy {energy} exceeds budget {e}"
            );
        }
    }

    #[test]
    fn eta_formula_is_stationary_point() {
        // At the closed-form eta, the partial derivative of C_t w.r.t.
        // 1/sqrt(eta) must vanish (Eq. 43).
        let cfg = small_cfg();
        let sigma = 0.7;
        let eta = optimal_eta_for_sigma(
            sigma,
            cfg.model_norm_bound,
            cfg.noise_variance,
            cfg.group_data_size,
        );
        let f = |e: f64| {
            aggregation_error_term(
                sigma,
                e,
                cfg.model_norm_bound,
                cfg.noise_variance,
                cfg.group_data_size,
            )
        };
        let eps = eta * 1e-4;
        let derivative = (f(eta + eps) - f(eta - eps)) / (2.0 * eps);
        assert!(
            derivative.abs() < 1e-6,
            "dC/deta = {derivative} at the closed-form optimum"
        );
    }

    #[test]
    fn unconstrained_solution_achieves_low_misalignment() {
        // With huge energy budgets the energy cap is inactive, so sigma =
        // sqrt(eta) and the misalignment term of C_t vanishes; the residual
        // cost is exactly the noise term sigma0^2/(D^2 eta).
        let mut cfg = small_cfg();
        cfg.energy_budgets = vec![1e12; 3];
        let sol = optimize_power(&cfg);
        let misalignment = (sol.sigma / sol.eta.sqrt() - 1.0).abs();
        assert!(misalignment < 1e-6, "misalignment {misalignment}");
        let expected_cost =
            cfg.noise_variance / (cfg.group_data_size * cfg.group_data_size * sol.eta);
        assert!((sol.cost - expected_cost).abs() < 1e-12);
    }

    #[test]
    fn tighter_energy_budget_increases_cost() {
        let loose = optimize_power(&small_cfg());
        let mut tight_cfg = small_cfg();
        tight_cfg.energy_budgets = vec![0.01; 3];
        let tight = optimize_power(&tight_cfg);
        assert!(
            tight.cost >= loose.cost,
            "tight {0} < loose {1}",
            tight.cost,
            loose.cost
        );
    }

    #[test]
    fn larger_group_reduces_noise_contribution() {
        // Doubling the group data size D_j reduces the noise term of C_t.
        let base = small_cfg();
        let mut big = base.clone();
        big.group_data_size *= 10.0;
        big.data_sizes = base.data_sizes.clone(); // same workers, larger D
        let sol_base = optimize_power(&base);
        let sol_big = optimize_power(&big);
        assert!(sol_big.cost <= sol_base.cost);
    }

    #[test]
    fn transmit_power_follows_inverse_channel() {
        let p_strong = transmit_power(100.0, 0.5, 2.0);
        let p_weak = transmit_power(100.0, 0.5, 0.5);
        assert!(p_weak > p_strong);
        assert!((p_strong - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "channel gains length mismatch")]
    fn validate_catches_mismatched_inputs() {
        let mut cfg = small_cfg();
        cfg.channel_gains.pop();
        cfg.validate();
    }

    #[test]
    fn zero_noise_allows_near_zero_cost_with_loose_budget() {
        let mut cfg = small_cfg();
        cfg.noise_variance = 0.0;
        cfg.energy_budgets = vec![1e9; 3];
        let sol = optimize_power(&cfg);
        assert!(sol.cost < 1e-9, "cost {}", sol.cost);
    }
}
