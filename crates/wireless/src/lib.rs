//! # wireless — over-the-air computation substrate
//!
//! Models the wireless multiple-access channel (MAC) that Air-FedGA aggregates
//! over, together with the orthogonal (OMA) transmission schemes used by the
//! FedAvg/TiFL baselines:
//!
//! * [`channel`] — per-round block-fading channel gains `h_i^t`.
//! * [`aircomp`] — the analog superposition of Eq. (9) and the denoised group
//!   estimate of Eq. (10), plus aggregation-error metrics.
//! * [`power`] — Algorithm 2: alternating optimisation of the power-scaling
//!   factor `σ_t` and the denoising factor `η_t` under per-worker energy
//!   budgets (Eq. (44) and Eq. (47)).
//! * [`energy`] — transmit-energy accounting `E_i^t = ‖p_i^t w_i^t‖²` (Eq. (7)).
//! * [`timing`] — the AirComp aggregation latency `L_u = (q/R)·L_s` (Eq. (33))
//!   and the OMA upload-latency model used by the non-AirComp baselines.
//!
//! The constants of §VI.A.2 (bandwidth 1 MHz, noise variance σ₀² = 1 W, energy
//! budget Ê_i = 10 J) are the defaults of [`timing::WirelessConfig`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aircomp;
pub mod channel;
pub mod energy;
pub mod power;
pub mod timing;

pub use aircomp::{
    air_aggregate, air_aggregate_indexed_into, air_aggregate_into, AirAggregationInput,
    AirAggregationResult, AirAggregationScratch, AirAggregationStats,
};
pub use channel::ChannelModel;
pub use power::{optimize_power, PowerControlConfig, PowerSolution};
pub use timing::{OmaScheme, WirelessConfig};
