//! Pool tests that force a multi-threaded configuration.
//!
//! The CI/sandbox machines may report a single core, in which case the lazy
//! pool never spawns workers and the in-crate unit tests only exercise the
//! sequential fallback. This integration test binary contains *only* tests
//! that call [`force_threads`] before any pool use, so the process-wide
//! thread-count cache is guaranteed to be initialised to 4 and the claiming /
//! parking / nested-help machinery genuinely runs on worker threads.

use parallel::prelude::*;
use parallel::{fork_join_chunks, max_threads, pool_workers};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// Pin `PARALLEL_THREADS=4` before the pool reads it. Every test in this
/// binary must call this first; the `Once` makes the write race-free across
/// the test harness's threads because the first caller wins before any pool
/// use can cache a different value.
fn force_threads() {
    static FORCE: Once = Once::new();
    FORCE.call_once(|| {
        std::env::set_var("PARALLEL_THREADS", "4");
        assert_eq!(max_threads(), 4, "thread count cached before the tests ran");
    });
}

#[test]
fn pool_spawns_persistent_workers() {
    force_threads();
    assert_eq!(pool_workers(), 3);
    // Repeated calls reuse the same pool (no further spawning observable
    // through the API; this mostly checks the OnceLock path is stable).
    assert_eq!(pool_workers(), 3);
}

#[test]
fn forked_map_is_bit_identical_to_sequential() {
    force_threads();
    let xs: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.37).cos()).collect();
    let par: Vec<f64> = xs
        .par_iter()
        .map(|&x| x.mul_add(1.25, -0.5).exp())
        .collect();
    let seq: Vec<f64> = xs.iter().map(|&x| x.mul_add(1.25, -0.5).exp()).collect();
    assert_eq!(par.len(), seq.len());
    for (a, b) in par.iter().zip(seq.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn consuming_map_is_bit_identical_to_sequential() {
    force_threads();
    let xs: Vec<u64> = (0..10_001).collect();
    let par: Vec<u64> = xs
        .clone()
        .into_par_iter()
        .map(|x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 7)
        .collect();
    let seq: Vec<u64> = xs
        .into_iter()
        .map(|x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 7)
        .collect();
    assert_eq!(par, seq);
}

#[test]
fn fork_join_covers_every_chunk_exactly_once() {
    force_threads();
    for chunks in [2usize, 3, 4, 5, 8, 16, 64] {
        let counts: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
        fork_join_chunks(chunks, &|c| {
            counts[c].fetch_add(1, Ordering::Relaxed);
        });
        for (c, cnt) in counts.iter().enumerate() {
            assert_eq!(cnt.load(Ordering::Relaxed), 1, "chunk {c} of {chunks}");
        }
    }
}

#[test]
fn nested_fan_out_runs_on_the_pool_without_deadlock() {
    force_threads();
    // Outer fan-out of 8 tasks, each issuing an inner fan-out of 8: the inner
    // calls are issued from pool workers (and from the caller), exercising
    // the idle-worker borrowing path. 500 repetitions to shake out races.
    for _ in 0..500 {
        let outer: Vec<usize> = (0..8).collect();
        let sums: Vec<usize> = outer
            .par_iter()
            .map(|&o| {
                let inner: Vec<usize> = (0..8).collect();
                let vals: Vec<usize> = inner.par_iter().map(|&i| o * 100 + i).collect();
                vals.iter().sum()
            })
            .collect();
        let expect: Vec<usize> = (0..8).map(|o| (0..8).map(|i| o * 100 + i).sum()).collect();
        assert_eq!(sums, expect);
    }
}

#[test]
fn deep_nesting_terminates() {
    force_threads();
    fn recurse(depth: usize) -> usize {
        if depth == 0 {
            return 1;
        }
        let parts: Vec<usize> = vec![depth; 3];
        let counts: Vec<usize> = parts.par_iter().map(|&d| recurse(d - 1)).collect();
        counts.iter().sum()
    }
    // 3^4 leaves across 4 levels of nested fan-out.
    assert_eq!(recurse(4), 81);
}

#[test]
fn chunk_panic_propagates_to_the_caller() {
    force_threads();
    let caught = std::panic::catch_unwind(|| {
        fork_join_chunks(8, &|c| {
            if c == 5 {
                panic!("chunk five exploded");
            }
        });
    });
    let payload = caught.expect_err("panic must propagate");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or("<non-str payload>");
    assert!(msg.contains("chunk five"), "unexpected payload: {msg}");
    // The pool must still be functional after a propagated panic.
    let xs: Vec<u32> = (0..100).collect();
    let out: Vec<u32> = xs.par_iter().map(|&x| x + 1).collect();
    assert_eq!(out[99], 100);
}

#[test]
fn many_small_fan_outs_reuse_the_pool() {
    force_threads();
    // Thousands of back-to-back fork/joins: if the pool leaked threads or
    // queue entries per call this would blow up quickly.
    let total = AtomicUsize::new(0);
    for _ in 0..5_000 {
        fork_join_chunks(4, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert_eq!(total.load(Ordering::Relaxed), 20_000);
}
