//! Over-decomposition factor 16 (finer than any engine fan-out needs — every
//! item gets its own chunk) must be bit-identical to sequential.

#[path = "chunk_common/mod.rs"]
mod chunk_common;

#[test]
fn factor_16_is_bit_identical_to_sequential() {
    chunk_common::run_suite(16);
}
