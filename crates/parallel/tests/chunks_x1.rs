//! Over-decomposition factor 1 (one contiguous chunk per thread — the
//! pre-over-decomposition split) must be bit-identical to sequential.

#[path = "chunk_common/mod.rs"]
mod chunk_common;

#[test]
fn factor_1_is_bit_identical_to_sequential() {
    chunk_common::run_suite(1);
}
