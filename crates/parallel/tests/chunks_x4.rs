//! Over-decomposition factor 4 (the default) must be bit-identical to
//! sequential.

#[path = "chunk_common/mod.rs"]
mod chunk_common;

#[test]
fn factor_4_is_bit_identical_to_sequential() {
    chunk_common::run_suite(4);
}
