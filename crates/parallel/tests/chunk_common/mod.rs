//! Shared body for the `chunks_x*` integration test binaries.
//!
//! The pool caches `PARALLEL_THREADS` / `PARALLEL_CHUNKS` once per process,
//! so each over-decomposition factor gets its own test binary: the binary
//! pins the environment before any pool use, then runs this suite, which
//! checks that every parallel-map shape is **bit-identical** to its
//! sequential counterpart whatever the factor.

use parallel::prelude::*;
use parallel::{chunk_factor, fork_join_chunks, max_threads, ChunkHint};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// Pin `PARALLEL_THREADS=4` and `PARALLEL_CHUNKS=<factor>` before the pool
/// reads them. Every test must call this first (the `Once` makes the write
/// race-free across the test harness's threads).
pub fn force(factor: usize) {
    static FORCE: Once = Once::new();
    FORCE.call_once(|| {
        std::env::set_var("PARALLEL_THREADS", "4");
        std::env::set_var("PARALLEL_CHUNKS", factor.to_string());
        assert_eq!(max_threads(), 4, "thread count cached before the tests ran");
        assert_eq!(
            chunk_factor(),
            factor,
            "chunk factor cached before the tests ran"
        );
    });
}

/// Borrowing map over floats: parallel result must be bit-identical to the
/// plain iterator result.
pub fn borrowed_map_matches_sequential() {
    let xs: Vec<f64> = (0..2_003).map(|i| (i as f64 * 0.61).sin()).collect();
    let par: Vec<f64> = xs.par_iter().map(|&x| x.mul_add(1.7, -0.3).exp()).collect();
    let seq: Vec<f64> = xs.iter().map(|&x| x.mul_add(1.7, -0.3).exp()).collect();
    assert_eq!(par.len(), seq.len());
    for (a, b) in par.iter().zip(seq.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Consuming map preserves input order exactly.
pub fn consuming_map_matches_sequential() {
    let xs: Vec<u64> = (0..4_441).collect();
    let par: Vec<u64> = xs
        .clone()
        .into_par_iter()
        .map(|x| x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 9)
        .collect();
    let seq: Vec<u64> = xs
        .into_iter()
        .map(|x| x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 9)
        .collect();
    assert_eq!(par, seq);
}

/// Nested fan-out (the two-level experiment-grid shape): outer cells issue
/// inner parallel maps; the whole thing must match the nested sequential
/// computation bit for bit.
pub fn nested_fan_out_matches_sequential() {
    let outer: Vec<u64> = (0..13).collect();
    let run_inner = |o: u64| -> f64 {
        let inner: Vec<f64> = (0..37).map(|i| (i as f64 + o as f64 * 0.5).cos()).collect();
        let mapped: Vec<f64> = inner.par_iter().map(|&x| x * 1.000001 + 0.25).collect();
        mapped.iter().sum()
    };
    let par: Vec<f64> = outer.par_iter().map(|&o| run_inner(o)).collect();
    let seq: Vec<f64> = outer
        .iter()
        .map(|&o| {
            let inner: Vec<f64> = (0..37).map(|i| (i as f64 + o as f64 * 0.5).cos()).collect();
            let mapped: Vec<f64> = inner.iter().map(|&x| x * 1.000001 + 0.25).collect();
            mapped.iter().sum()
        })
        .collect();
    for (a, b) in par.iter().zip(seq.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Wildly uneven per-item costs (the tail-latency case over-decomposition
/// exists for): results must still be position-exact.
pub fn uneven_item_costs_stay_ordered() {
    let xs: Vec<usize> = (0..97).collect();
    let par: Vec<u64> = xs
        .par_iter()
        .map(|&i| {
            // Item cost varies by ~300x across the input.
            let spins = if i % 7 == 0 { 30_000 } else { 100 };
            let mut acc = i as u64;
            for s in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(s);
            }
            acc
        })
        .collect();
    let seq: Vec<u64> = xs
        .iter()
        .map(|&i| {
            let spins = if i % 7 == 0 { 30_000 } else { 100 };
            let mut acc = i as u64;
            for s in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(s);
            }
            acc
        })
        .collect();
    assert_eq!(par, seq);
}

/// Per-call [`ChunkHint`]s under an explicit `PARALLEL_CHUNKS` pin: the pin
/// wins (scheduling), and results stay bit-identical to sequential whatever
/// the hint.
pub fn chunk_hints_respect_env_pin() {
    let pinned = chunk_factor();
    for hint in [
        ChunkHint::Default,
        ChunkHint::Fine,
        ChunkHint::Coarse,
        ChunkHint::Factor(9),
    ] {
        assert_eq!(hint.factor(), pinned, "env pin must beat hint {hint:?}");
        let xs: Vec<f64> = (0..1_777).map(|i| (i as f64 * 0.83).sin()).collect();
        let par: Vec<f64> = xs
            .par_iter()
            .map(|&x| x.mul_add(0.9, 0.1))
            .with_chunk_hint(hint)
            .collect();
        let seq: Vec<f64> = xs.iter().map(|&x| x.mul_add(0.9, 0.1)).collect();
        for (a, b) in par.iter().zip(seq.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "hint {hint:?}");
        }
    }
}

/// `fork_join_chunks` is unaffected by the factor (the caller fixes the chunk
/// count) — every chunk still runs exactly once.
pub fn fork_join_still_covers_every_chunk() {
    for chunks in [2usize, 5, 16, 61] {
        let counts: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
        fork_join_chunks(chunks, &|c| {
            counts[c].fetch_add(1, Ordering::Relaxed);
        });
        for (c, cnt) in counts.iter().enumerate() {
            assert_eq!(cnt.load(Ordering::Relaxed), 1, "chunk {c} of {chunks}");
        }
    }
}

/// Run the whole suite (called by each factor-pinned binary).
pub fn run_suite(factor: usize) {
    force(factor);
    borrowed_map_matches_sequential();
    consuming_map_matches_sequential();
    nested_fan_out_matches_sequential();
    uneven_item_costs_stay_ordered();
    chunk_hints_respect_env_pin();
    fork_join_still_covers_every_chunk();
}
