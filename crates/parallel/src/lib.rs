//! Rayon-style fork/join parallelism over `std::thread::scope`.
//!
//! The build container has no crates.io access, so this crate provides the
//! small slice of the rayon API the workspace needs — `par_iter().map(..)
//! .collect()` over slices and owned vectors — implemented with scoped
//! threads and contiguous chunking. There is **no persistent pool**: each
//! `collect()` spawns up to `min(max_threads, items)` OS threads and joins
//! them, so the per-call overhead is tens of microseconds — fine for the
//! engines' per-round local-training fan-out, wasteful for micro-tasks
//! (a persistent pool is a ROADMAP open item). Two properties matter to
//! the callers:
//!
//! * **Order preservation**: `collect()` returns results in input order, so a
//!   reduction over the collected vector is performed in a fixed order and
//!   parallel runs are bit-identical to sequential runs (floating-point
//!   addition is not associative; a work-stealing reduction would not be
//!   deterministic).
//! * **No shared mutable state**: the `map` closure receives each item by
//!   value / shared reference; any per-item RNG or scratch state must travel
//!   inside the item itself, which is exactly how the training engine hands
//!   each worker its own `Rng64` stream and scratch workspace.
//!
//! Thread count defaults to [`std::thread::available_parallelism`] and can be
//! pinned with the `PARALLEL_THREADS` environment variable (``1`` forces
//! sequential execution, useful for profiling and determinism checks —
//! although by construction the results are identical either way).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

/// Convenience re-exports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParVec, ParSlice};
}

/// Maximum number of worker threads fork/join calls will use.
pub fn max_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var("PARALLEL_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Parallel iteration over slices, mirroring `rayon`'s `par_iter()`.
pub trait ParSlice<T: Sync> {
    /// A parallel iterator over shared references to the elements.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> ParSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// Parallel iteration over owned vectors, mirroring `rayon`'s
/// `into_par_iter()`.
pub trait IntoParVec<T: Send> {
    /// A parallel iterator that consumes the vector.
    fn into_par_iter(self) -> ParIntoIter<T>;
}

impl<T: Send> IntoParVec<T> for Vec<T> {
    fn into_par_iter(self) -> ParIntoIter<T> {
        ParIntoIter { items: self }
    }
}

/// Borrowing parallel iterator (see [`ParSlice::par_iter`]).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every element through `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; terminate it with `collect()`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Execute the map and collect the results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromOrdered<R>,
    {
        let n = self.items.len();
        let threads = max_threads().min(n.max(1));
        let f = &self.f;
        if threads <= 1 || n < 2 {
            return C::from_vec(self.items.iter().map(f).collect());
        }
        let chunk = n.div_ceil(threads);
        let out = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            let mut out = Vec::with_capacity(n);
            for h in handles {
                out.extend(h.join().expect("parallel map worker panicked"));
            }
            out
        });
        C::from_vec(out)
    }
}

/// Consuming parallel iterator (see [`IntoParVec::into_par_iter`]).
pub struct ParIntoIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIntoIter<T> {
    /// Map every element through `f`, in parallel, consuming the input.
    pub fn map<R, F>(self, f: F) -> ParIntoMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIntoMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIntoIter::map`]; terminate it with `collect()`.
pub struct ParIntoMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParIntoMap<T, F> {
    /// Execute the map and collect the results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromOrdered<R>,
    {
        let n = self.items.len();
        let threads = max_threads().min(n.max(1));
        let f = &self.f;
        if threads <= 1 || n < 2 {
            return C::from_vec(self.items.into_iter().map(f).collect());
        }
        let chunk = n.div_ceil(threads);
        // Split the input into per-thread contiguous chunks, preserving order.
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut rest = self.items;
        while rest.len() > chunk {
            let tail = rest.split_off(chunk);
            chunks.push(rest);
            rest = tail;
        }
        chunks.push(rest);
        let out = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            let mut out = Vec::with_capacity(n);
            for h in handles {
                out.extend(h.join().expect("parallel map worker panicked"));
            }
            out
        });
        C::from_vec(out)
    }
}

/// Collection types an ordered parallel map can terminate into.
pub trait FromOrdered<R> {
    /// Build the collection from an already-ordered vector of results.
    fn from_vec(v: Vec<R>) -> Self;
}

impl<R> FromOrdered<R> for Vec<R> {
    fn from_vec(v: Vec<R>) -> Self {
        v
    }
}

/// Borrow multiple distinct elements of a slice mutably at once.
///
/// `indices` must be strictly increasing (the caller's group member lists are
/// already sorted and duplicate-free). This is how the training engine hands
/// disjoint `&mut WorkerState`s of one group to a parallel map without
/// cloning the pool. Panics on out-of-order or out-of-range indices.
pub fn disjoint_muts<'a, T>(slice: &'a mut [T], indices: &[usize]) -> Vec<&'a mut T> {
    let mut out = Vec::with_capacity(indices.len());
    let mut rest = slice;
    let mut consumed = 0usize;
    for &i in indices {
        assert!(
            i >= consumed,
            "disjoint_muts requires strictly increasing indices"
        );
        let (_, tail) = rest.split_at_mut(i - consumed);
        let (item, tail) = tail
            .split_first_mut()
            .expect("disjoint_muts index out of range");
        out.push(item);
        rest = tail;
        consumed = i + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_map_preserves_order() {
        let xs: Vec<u64> = (0..997).collect();
        let out: Vec<u64> = xs.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (1..998).collect::<Vec<_>>());
    }

    #[test]
    fn small_inputs_run_sequentially() {
        let xs = vec![41u32];
        let out: Vec<u32> = xs.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn disjoint_muts_yields_every_requested_element() {
        let mut xs = vec![0, 10, 20, 30, 40, 50];
        let muts = disjoint_muts(&mut xs, &[1, 3, 4]);
        assert_eq!(muts.len(), 3);
        for m in muts {
            *m += 1;
        }
        assert_eq!(xs, vec![0, 11, 20, 31, 41, 50]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn disjoint_muts_rejects_unsorted_indices() {
        let mut xs = vec![1, 2, 3];
        let _ = disjoint_muts(&mut xs, &[2, 0]);
    }

    #[test]
    fn parallel_matches_sequential_float_reduction() {
        // Order preservation means the caller's fold order is fixed, so the
        // floating-point sum is bit-identical however many threads ran.
        let xs: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let mapped: Vec<f64> = xs.par_iter().map(|&x| x * 1.000001 + 0.5).collect();
        let seq: Vec<f64> = xs.iter().map(|&x| x * 1.000001 + 0.5).collect();
        for (a, b) in mapped.iter().zip(seq.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
