//! Rayon-style fork/join parallelism over a **persistent worker pool**.
//!
//! The build container has no crates.io access, so this crate provides the
//! small slice of the rayon API the workspace needs — `par_iter().map(..)
//! .collect()` over slices and owned vectors, plus the raw
//! [`fork_join_chunks`] primitive they are built on — without pulling in a
//! dependency.
//!
//! ## Persistent pool semantics
//!
//! Worker threads are started **once**, on the first parallel call, and then
//! park on a condvar between calls. A fork/join call splits its input into
//! contiguous chunks, publishes the call to a global queue, wakes the
//! workers, and *participates itself*: the calling thread claims and executes
//! chunks exactly like a worker until none are left, then waits for the
//! chunks other threads claimed to finish. Compared to the previous
//! spawn-per-call design (`std::thread::scope`, tens of microseconds of
//! thread start/join per call) the steady-state cost of a fan-out is a queue
//! push, a condvar wake and one uncontended latch — which is what makes
//! per-round parallelism profitable even for very small groups (see the
//! `pool` bench group).
//!
//! ## Nesting rules
//!
//! Fork/join calls may nest arbitrarily: a closure running on a pool worker
//! (or on the caller) can itself call [`fork_join_chunks`] / `par_iter`.
//! Nested calls push to the same global queue, so **idle workers help with
//! inner fan-outs**; and because every caller executes its own unclaimed
//! chunks before blocking, a call can always complete on the calling thread
//! alone — there is no cyclic wait and **no deadlock**, whatever the nesting
//! depth. (A chunk claimed by another thread is always being actively
//! executed, and its own nested waits satisfy the same invariant
//! inductively.) The experiment harness exploits this: `run_grid` fans
//! independent experiment cells over the pool while each cell's training
//! rounds keep issuing inner per-member fan-outs.
//!
//! ## Over-decomposed chunking
//!
//! A parallel map does **not** split its input into one contiguous chunk per
//! thread: it publishes up to `PARALLEL_CHUNKS × threads` fixed-boundary
//! contiguous chunks (default factor 4, capped by the item count). With one
//! chunk per thread, a single expensive item — a heterogeneous mechanism in
//! an experiment grid, a seed that runs long before hitting
//! `max_virtual_time` — serializes the whole fan-out on the thread that drew
//! it while the others sit idle at the tail. Over-decomposition lets the
//! work-claiming scheduler rebalance: threads that finish their cheap chunks
//! claim the remaining ones, so the tail shrinks from "slowest chunk" towards
//! "slowest single item". The factor trades tail latency against per-chunk
//! queue overhead; 4 keeps the hot 2–4-item engine fan-outs at one item per
//! chunk while giving large experiment grids room to balance. Callers that
//! know their cost profile can override the factor per call with a
//! [`ChunkHint`] (`.map(..).with_chunk_hint(..)`): fine splits for uneven
//! experiment grids, coarse splits for uniform micro fan-outs. An explicit
//! `PARALLEL_CHUNKS` pin beats every hint; hints are scheduling-only and
//! never change results.
//!
//! ## Determinism
//!
//! Two properties keep parallel runs **bit-identical** to sequential runs:
//!
//! * **Fixed chunk → output mapping**: chunks are contiguous input ranges and
//!   each writes its own output slot; `collect()` concatenates the slots in
//!   input order. Which thread executes a chunk (or in what order) cannot
//!   affect the result, so a work-claiming scheduler is safe to use — the
//!   *assignment* of items to chunks is deterministic, the *scheduling* of
//!   chunks is free. For the same reason the *number* of chunks is free too:
//!   any `PARALLEL_CHUNKS` × `PARALLEL_THREADS` combination produces the
//!   same concatenation, which the CI determinism job cross-checks by
//!   diffing experiment outputs across both knobs.
//! * **No shared mutable state**: the `map` closure receives each item by
//!   value / shared reference; any per-item RNG or scratch state must travel
//!   inside the item itself, which is exactly how the training engine hands
//!   each worker its own `Rng64` stream and scratch workspace.
//!
//! Thread count defaults to [`std::thread::available_parallelism`] and can be
//! pinned with the `PARALLEL_THREADS` environment variable, read once at
//! first use (``1`` forces fully sequential, in-line execution — no worker
//! threads are ever spawned — useful for profiling; by construction the
//! results are identical either way). The over-decomposition factor is
//! pinned the same way with `PARALLEL_CHUNKS` (``1`` restores
//! one-chunk-per-thread).
//!
//! A panic inside a chunk is captured, the remaining chunks still run (so the
//! fork/join protocol stays balanced), and the first panic payload is
//! re-thrown on the calling thread once the call completes.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Mutex, OnceLock};

/// Convenience re-exports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{ChunkHint, IntoParVec, ParSlice};
}

/// Maximum number of threads a fork/join call will use (the calling thread
/// plus [`pool_workers`] persistent workers).
pub fn max_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var("PARALLEL_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The built-in over-decomposition factor used when neither the
/// `PARALLEL_CHUNKS` environment variable nor a per-call [`ChunkHint`]
/// overrides it.
pub const DEFAULT_CHUNK_FACTOR: usize = 4;

/// The explicitly-pinned over-decomposition factor, if any: the
/// `PARALLEL_CHUNKS` environment variable, read once at first use. An
/// explicit pin takes precedence over per-call [`ChunkHint`]s, so the CI
/// determinism matrix (and profiling runs) can force one factor everywhere.
fn env_chunk_factor() -> Option<usize> {
    static CACHED: OnceLock<Option<usize>> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("PARALLEL_CHUNKS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.max(1))
    })
}

/// Over-decomposition factor: a parallel map targets `chunk_factor() ×`
/// [`max_threads`] chunks (capped by the item count). Defaults to 4; pinned
/// with the `PARALLEL_CHUNKS` environment variable, read once at first use
/// (`1` restores the old one-contiguous-chunk-per-thread split). The factor
/// never affects results — only how finely the scheduler can load-balance.
pub fn chunk_factor() -> usize {
    env_chunk_factor().unwrap_or(DEFAULT_CHUNK_FACTOR)
}

/// Per-call hint for how finely a parallel map should over-decompose its
/// input, for callers that know their cost profile: experiment grids with
/// wildly uneven cells want fine splits so the work-claiming scheduler can
/// rebalance, while uniform micro fan-outs (e.g. a round's per-member local
/// updates) want coarse splits to shave queue overhead.
///
/// Hints are **scheduling-only**: the chunk → output mapping stays fixed, so
/// any hint is bit-identical to any other (and to sequential execution). An
/// explicit `PARALLEL_CHUNKS` environment pin overrides every hint, which
/// keeps the CI determinism matrix able to force one factor everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkHint {
    /// Use the global default ([`chunk_factor`]).
    #[default]
    Default,
    /// Known-uneven workloads: split 4× finer than the default (factor 16).
    Fine,
    /// Uniform micro fan-outs: one contiguous chunk per thread (factor 1).
    Coarse,
    /// An explicit factor (clamped to at least 1).
    Factor(usize),
}

impl ChunkHint {
    /// The effective over-decomposition factor for this hint, honouring an
    /// explicit `PARALLEL_CHUNKS` pin over the hint itself.
    pub fn factor(self) -> usize {
        if let Some(pinned) = env_chunk_factor() {
            return pinned;
        }
        match self {
            ChunkHint::Default => DEFAULT_CHUNK_FACTOR,
            ChunkHint::Fine => 4 * DEFAULT_CHUNK_FACTOR,
            ChunkHint::Coarse => 1,
            ChunkHint::Factor(n) => n.max(1),
        }
    }
}

/// Number of persistent worker threads backing the pool: `max_threads() - 1`
/// (the calling thread is the remaining participant), hence `0` when the
/// pool is configured for sequential execution. Calling this starts the pool
/// if it has not started yet.
pub fn pool_workers() -> usize {
    pool::workers()
}

/// Run `run(0), run(1), …, run(chunks - 1)`, distributing the chunk indices
/// across the persistent pool; returns when every chunk has completed.
///
/// This is the primitive beneath `par_iter().map(..).collect()`. The calling
/// thread participates (it claims and executes chunks like a worker), so the
/// call completes even if every pool worker is busy, and nested calls are
/// deadlock-free (see the module docs). With `chunks <= 1` or a sequential
/// pool configuration the chunks run in-line in index order.
///
/// If any chunk panics, the remaining chunks still execute and the first
/// panic is re-thrown on the calling thread afterwards.
pub fn fork_join_chunks<F: Fn(usize) + Sync>(chunks: usize, run: &F) {
    // Sched plane: a sequential configuration short-circuits parallel maps
    // in `collect_with` before they reach this call, so the fan-out count
    // (like the chunk claims counted inside the pool) describes the
    // schedule, not the program.
    telemetry::metrics::POOL_FORK_JOINS.add(1);
    telemetry::metrics::POOL_THREADS.set_max(max_threads() as u64);
    pool::fork_join(chunks, run)
}

/// Reference implementation of [`fork_join_chunks`] that spawns one scoped OS
/// thread per chunk and joins them — the crate's pre-pool behaviour. Kept
/// (not used by any engine path) as the baseline the `pool` benchmark group
/// measures the persistent pool's amortised overhead against.
pub fn fork_join_chunks_spawned<F: Fn(usize) + Sync>(chunks: usize, run: &F) {
    if chunks <= 1 {
        for c in 0..chunks {
            run(c);
        }
        return;
    }
    std::thread::scope(|s| {
        for c in 1..chunks {
            s.spawn(move || run(c));
        }
        run(0);
    });
}

/// The persistent pool internals: the one module that needs `unsafe` (the
/// fork/join protocol sends a lifetime-erased pointer to the stack-allocated
/// call descriptor to the worker threads).
#[allow(unsafe_code)]
mod pool {
    use super::max_threads;
    use std::any::Any;
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex, OnceLock};

    /// One fork/join call in flight. Lives on the calling thread's stack for
    /// the whole call: the caller does not return until `done == chunks`.
    struct FanOut {
        /// Type-erased chunk runner: `call(data, chunk_index)` invokes the
        /// caller's `&F` closure. Erasing through a shim function keeps the
        /// unsafe surface to two pointer casts.
        data: *const (),
        call: fn(*const (), usize),
        chunks: usize,
        /// Next chunk index to claim. Only ever advanced **under the pool's
        /// queue lock**, so the removal of an exhausted call from the queue
        /// is atomic with the claim of its final chunk.
        next: AtomicUsize,
        /// Completed-chunk count plus the first captured panic payload.
        state: Mutex<DoneState>,
        all_done: Condvar,
    }

    struct DoneState {
        done: usize,
        panic: Option<Box<dyn Any + Send>>,
    }

    fn shim<F: Fn(usize) + Sync>(data: *const (), chunk: usize) {
        // SAFETY: `data` was created from a live `&F` in `fork_join`, and the
        // fork/join protocol guarantees the referent outlives every call
        // (the caller blocks until all chunks complete).
        let f = unsafe { &*(data as *const F) };
        f(chunk);
    }

    /// Queue entry: raw pointer to a stack-owned [`FanOut`].
    struct FanPtr(*const FanOut);
    // SAFETY: a `FanPtr` is only dereferenced while the fork/join protocol
    // keeps its referent alive — see the invariants in `claim_front`.
    unsafe impl Send for FanPtr {}

    struct Shared {
        queue: Mutex<VecDeque<FanPtr>>,
        work_available: Condvar,
        workers: usize,
    }

    /// The process-global pool, started lazily on first use. `None` when the
    /// configuration is sequential (`max_threads() == 1`): no worker threads
    /// are ever spawned in that case.
    fn shared() -> Option<&'static Shared> {
        static POOL: OnceLock<Option<&'static Shared>> = OnceLock::new();
        *POOL.get_or_init(|| {
            let workers = max_threads().saturating_sub(1);
            if workers == 0 {
                return None;
            }
            let sh: &'static Shared = Box::leak(Box::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                work_available: Condvar::new(),
                workers,
            }));
            for i in 0..workers {
                std::thread::Builder::new()
                    .name(format!("parallel-{i}"))
                    .spawn(move || worker_loop(sh))
                    .expect("failed to spawn pool worker thread");
            }
            Some(sh)
        })
    }

    pub(super) fn workers() -> usize {
        shared().map_or(0, |s| s.workers)
    }

    /// Worker body: claim a chunk of some queued call, execute it, repeat;
    /// park on the condvar while the queue is empty. Workers are detached and
    /// live until process exit.
    fn worker_loop(sh: &'static Shared) {
        loop {
            let (fan, chunk) = {
                let mut q = sh.queue.lock().expect("pool queue poisoned");
                loop {
                    if let Some(claimed) = claim_front(&mut q) {
                        break claimed;
                    }
                    q = sh
                        .work_available
                        .wait(q)
                        .expect("pool queue poisoned while parked");
                }
            };
            execute(fan, chunk);
        }
    }

    /// Under the queue lock: claim the next chunk of the front call, popping
    /// the call once its final chunk is claimed.
    ///
    /// Pointer-validity invariant: a call is pushed before its caller claims
    /// any chunk, is removed (under this same lock) together with the claim
    /// of its final chunk, and its caller keeps the `FanOut` alive until
    /// every *claimed* chunk has completed. So any entry observed in the
    /// queue still has unclaimed chunks, and its pointer is live for the
    /// duration of the claimed chunk's execution.
    fn claim_front(q: &mut VecDeque<FanPtr>) -> Option<(*const FanOut, usize)> {
        loop {
            let &FanPtr(p) = q.front()?;
            // SAFETY: see the invariant above.
            let fan = unsafe { &*p };
            let c = fan.next.fetch_add(1, Ordering::Relaxed);
            if c + 1 >= fan.chunks {
                q.pop_front();
            }
            if c < fan.chunks {
                return Some((p, c));
            }
            // Defensive: an exhausted entry should never be observable (it is
            // popped with its final claim); if it were, skip to the next.
        }
    }

    /// The calling thread's claim path (its call may sit anywhere in the
    /// queue, not just at the front). Same lock, same invariants.
    fn claim_mine(sh: &Shared, fan: &FanOut, me: *const FanOut) -> Option<usize> {
        let mut q = sh.queue.lock().expect("pool queue poisoned");
        let c = fan.next.fetch_add(1, Ordering::Relaxed);
        if c + 1 >= fan.chunks {
            q.retain(|e| !std::ptr::eq(e.0, me));
        }
        (c < fan.chunks).then_some(c)
    }

    /// Execute one claimed chunk and publish its completion. Panics are
    /// captured so the protocol stays balanced; the first payload is
    /// re-thrown by the caller after the join.
    fn execute(p: *const FanOut, chunk: usize) {
        // SAFETY: the chunk was claimed under the queue lock, so the caller
        // is still blocked in `fork_join` waiting for this completion and the
        // `FanOut` is alive (see `claim_front`).
        let fan = unsafe { &*p };
        telemetry::metrics::POOL_CHUNKS_CLAIMED.add(1);
        let result = catch_unwind(AssertUnwindSafe(|| (fan.call)(fan.data, chunk)));
        let mut st = fan.state.lock().expect("fork/join latch poisoned");
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.done += 1;
        if st.done == fan.chunks {
            // The caller can only observe `done == chunks` after this guard
            // drops, at which point this thread no longer touches `fan`.
            fan.all_done.notify_all();
        }
    }

    pub(super) fn fork_join<F: Fn(usize) + Sync>(chunks: usize, run: &F) {
        let sequential = chunks <= 1;
        let Some(sh) = (if sequential { None } else { shared() }) else {
            telemetry::metrics::POOL_CHUNKS_CLAIMED.add(chunks as u64);
            for c in 0..chunks {
                run(c);
            }
            return;
        };
        let fan = FanOut {
            data: run as *const F as *const (),
            call: shim::<F>,
            chunks,
            next: AtomicUsize::new(0),
            state: Mutex::new(DoneState {
                done: 0,
                panic: None,
            }),
            all_done: Condvar::new(),
        };
        let me: *const FanOut = &fan;
        {
            let mut q = sh.queue.lock().expect("pool queue poisoned");
            q.push_back(FanPtr(me));
        }
        // Wake only as many workers as there are chunks the caller cannot
        // take itself: the engines' hottest fan-outs are 2–4 chunks, and
        // notify_all would stampede every parked worker into the queue lock
        // just to find the call already drained by the help-first loop below.
        let wakes = chunks - 1;
        if wakes >= sh.workers {
            sh.work_available.notify_all();
        } else {
            for _ in 0..wakes {
                sh.work_available.notify_one();
            }
        }
        // Help-first: execute our own chunks until they are all claimed.
        while let Some(c) = claim_mine(sh, &fan, me) {
            execute(me, c);
        }
        // Join: wait for the chunks other threads claimed.
        let mut st = fan.state.lock().expect("fork/join latch poisoned");
        while st.done < fan.chunks {
            st = fan
                .all_done
                .wait(st)
                .expect("fork/join latch poisoned while waiting");
        }
        let payload = st.panic.take();
        drop(st);
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// Parallel iteration over slices, mirroring `rayon`'s `par_iter()`.
pub trait ParSlice<T: Sync> {
    /// A parallel iterator over shared references to the elements.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> ParSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// Parallel iteration over owned vectors, mirroring `rayon`'s
/// `into_par_iter()`.
pub trait IntoParVec<T: Send> {
    /// A parallel iterator that consumes the vector.
    fn into_par_iter(self) -> ParIntoIter<T>;
}

impl<T: Send> IntoParVec<T> for Vec<T> {
    fn into_par_iter(self) -> ParIntoIter<T> {
        ParIntoIter { items: self }
    }
}

/// Borrowing parallel iterator (see [`ParSlice::par_iter`]).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every element through `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
            hint: ChunkHint::Default,
        }
    }
}

/// The result of [`ParIter::map`]; terminate it with `collect()`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
    hint: ChunkHint,
}

/// Contiguous chunk length for `n` items under over-decomposition: the map
/// targets `hint.factor() × `[`max_threads`] chunks (the factor defaulting to
/// [`chunk_factor`]), capped by the item count, so uneven per-item costs can
/// be rebalanced by the work-claiming scheduler instead of serializing the
/// fan-out on the slowest thread. Boundaries are a pure function of
/// `(n, threads, factor)` — and the output concatenation is
/// chunking-independent, so any setting of any knob is bit-identical to
/// sequential execution.
fn chunk_len(n: usize, hint: ChunkHint) -> usize {
    let target = (max_threads() * hint.factor()).min(n.max(1));
    n.div_ceil(target)
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Override the over-decomposition factor for this call (see
    /// [`ChunkHint`]; scheduling-only, never affects the result).
    pub fn with_chunk_hint(mut self, hint: ChunkHint) -> Self {
        self.hint = hint;
        self
    }

    /// Execute the map on the pool and collect the results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromOrdered<R>,
    {
        let n = self.items.len();
        let f = &self.f;
        if max_threads() <= 1 || n < 2 {
            return C::from_vec(self.items.iter().map(f).collect());
        }
        let chunk = chunk_len(n, self.hint);
        let nchunks = n.div_ceil(chunk);
        let items = self.items;
        // One output slot per chunk; each chunk locks only its own slot, once.
        let slots: Vec<Mutex<Vec<R>>> = (0..nchunks).map(|_| Mutex::new(Vec::new())).collect();
        fork_join_chunks(nchunks, &|c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(n);
            let out: Vec<R> = items[lo..hi].iter().map(f).collect();
            *slots[c].lock().expect("par map slot poisoned") = out;
        });
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            out.extend(slot.into_inner().expect("par map slot poisoned"));
        }
        C::from_vec(out)
    }
}

/// Consuming parallel iterator (see [`IntoParVec::into_par_iter`]).
pub struct ParIntoIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIntoIter<T> {
    /// Map every element through `f`, in parallel, consuming the input.
    pub fn map<R, F>(self, f: F) -> ParIntoMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIntoMap {
            items: self.items,
            f,
            hint: ChunkHint::Default,
        }
    }
}

/// The result of [`ParIntoIter::map`]; terminate it with `collect()`.
pub struct ParIntoMap<T, F> {
    items: Vec<T>,
    f: F,
    hint: ChunkHint,
}

impl<T: Send, F> ParIntoMap<T, F> {
    /// Override the over-decomposition factor for this call (see
    /// [`ChunkHint`]; scheduling-only, never affects the result).
    pub fn with_chunk_hint(mut self, hint: ChunkHint) -> Self {
        self.hint = hint;
        self
    }

    /// Execute the map on the pool and collect the results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromOrdered<R>,
    {
        let n = self.items.len();
        let f = &self.f;
        if max_threads() <= 1 || n < 2 {
            return C::from_vec(self.items.into_iter().map(f).collect());
        }
        let chunk = chunk_len(n, self.hint);
        // Split the input into per-chunk contiguous vectors, preserving order.
        let mut split: Vec<Vec<T>> = Vec::with_capacity(n.div_ceil(chunk));
        let mut rest = self.items;
        while rest.len() > chunk {
            let tail = rest.split_off(chunk);
            split.push(rest);
            rest = tail;
        }
        split.push(rest);
        let nchunks = split.len();
        // Input handed out through per-chunk slots (each taken exactly once),
        // results returned the same way.
        let inputs: Vec<Mutex<Option<Vec<T>>>> =
            split.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let slots: Vec<Mutex<Vec<R>>> = (0..nchunks).map(|_| Mutex::new(Vec::new())).collect();
        fork_join_chunks(nchunks, &|c| {
            let chunk_items = inputs[c]
                .lock()
                .expect("par map input slot poisoned")
                .take()
                .expect("chunk input taken twice");
            let out: Vec<R> = chunk_items.into_iter().map(f).collect();
            *slots[c].lock().expect("par map slot poisoned") = out;
        });
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            out.extend(slot.into_inner().expect("par map slot poisoned"));
        }
        C::from_vec(out)
    }
}

/// Collection types an ordered parallel map can terminate into.
pub trait FromOrdered<R> {
    /// Build the collection from an already-ordered vector of results.
    fn from_vec(v: Vec<R>) -> Self;
}

impl<R> FromOrdered<R> for Vec<R> {
    fn from_vec(v: Vec<R>) -> Self {
        v
    }
}

/// Borrow multiple distinct elements of a slice mutably at once.
///
/// `indices` must be strictly increasing (the caller's group member lists are
/// already sorted and duplicate-free). This is how the training engine hands
/// disjoint `&mut WorkerState`s of one group to a parallel map without
/// cloning the pool. Panics on out-of-order or out-of-range indices.
pub fn disjoint_muts<'a, T>(slice: &'a mut [T], indices: &[usize]) -> Vec<&'a mut T> {
    let mut out = Vec::with_capacity(indices.len());
    let mut rest = slice;
    let mut consumed = 0usize;
    for &i in indices {
        assert!(
            i >= consumed,
            "disjoint_muts requires strictly increasing indices"
        );
        let (_, tail) = rest.split_at_mut(i - consumed);
        let (item, tail) = tail
            .split_first_mut()
            .expect("disjoint_muts index out of range");
        out.push(item);
        rest = tail;
        consumed = i + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_map_preserves_order() {
        let xs: Vec<u64> = (0..997).collect();
        let out: Vec<u64> = xs.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (1..998).collect::<Vec<_>>());
    }

    #[test]
    fn small_inputs_run_sequentially() {
        let xs = vec![41u32];
        let out: Vec<u32> = xs.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn fork_join_runs_every_chunk_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counts: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
        fork_join_chunks(counts.len(), &|c| {
            counts[c].fetch_add(1, Ordering::Relaxed);
        });
        for (c, cnt) in counts.iter().enumerate() {
            assert_eq!(cnt.load(Ordering::Relaxed), 1, "chunk {c}");
        }
        // Zero chunks is a no-op.
        fork_join_chunks(0, &|_| panic!("must not run"));
    }

    #[test]
    fn spawned_reference_runs_every_chunk() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let total = AtomicUsize::new(0);
        fork_join_chunks_spawned(8, &|c| {
            total.fetch_add(c + 1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 36);
    }

    #[test]
    fn disjoint_muts_yields_every_requested_element() {
        let mut xs = vec![0, 10, 20, 30, 40, 50];
        let muts = disjoint_muts(&mut xs, &[1, 3, 4]);
        assert_eq!(muts.len(), 3);
        for m in muts {
            *m += 1;
        }
        assert_eq!(xs, vec![0, 11, 20, 31, 41, 50]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn disjoint_muts_rejects_unsorted_indices() {
        let mut xs = vec![1, 2, 3];
        let _ = disjoint_muts(&mut xs, &[2, 0]);
    }

    #[test]
    fn parallel_matches_sequential_float_reduction() {
        // Order preservation means the caller's fold order is fixed, so the
        // floating-point sum is bit-identical however many threads ran.
        let xs: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let mapped: Vec<f64> = xs.par_iter().map(|&x| x * 1.000001 + 0.5).collect();
        let seq: Vec<f64> = xs.iter().map(|&x| x * 1.000001 + 0.5).collect();
        for (a, b) in mapped.iter().zip(seq.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chunk_hints_never_change_results() {
        let xs: Vec<f64> = (0..3_001).map(|i| (i as f64 * 0.37).cos()).collect();
        let seq: Vec<f64> = xs.iter().map(|&x| x * 1.5 - 0.25).collect();
        for hint in [
            ChunkHint::Default,
            ChunkHint::Fine,
            ChunkHint::Coarse,
            ChunkHint::Factor(7),
        ] {
            let par: Vec<f64> = xs
                .par_iter()
                .map(|&x| x * 1.5 - 0.25)
                .with_chunk_hint(hint)
                .collect();
            for (a, b) in par.iter().zip(seq.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "hint {hint:?}");
            }
            let owned: Vec<f64> = xs
                .clone()
                .into_par_iter()
                .map(|x| x * 1.5 - 0.25)
                .with_chunk_hint(hint)
                .collect();
            assert_eq!(owned.len(), seq.len());
            for (a, b) in owned.iter().zip(seq.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "hint {hint:?} (owned)");
            }
        }
    }

    #[test]
    fn chunk_hint_factors_resolve_as_documented() {
        // An explicit PARALLEL_CHUNKS pin overrides hints; only assert the
        // hint → factor mapping when the environment leaves it in charge.
        if std::env::var("PARALLEL_CHUNKS").is_err() {
            assert_eq!(ChunkHint::Default.factor(), DEFAULT_CHUNK_FACTOR);
            assert_eq!(ChunkHint::Fine.factor(), 4 * DEFAULT_CHUNK_FACTOR);
            assert_eq!(ChunkHint::Coarse.factor(), 1);
            assert_eq!(ChunkHint::Factor(7).factor(), 7);
            assert_eq!(ChunkHint::Factor(0).factor(), 1);
        } else {
            let pinned = chunk_factor();
            for hint in [ChunkHint::Default, ChunkHint::Fine, ChunkHint::Coarse] {
                assert_eq!(hint.factor(), pinned);
            }
        }
    }

    #[test]
    fn nested_fan_out_matches_nested_sequential() {
        // Inner par_iter inside an outer par_iter; compare against the plain
        // nested iterator computation.
        let outer: Vec<u64> = (0..32).collect();
        let nested: Vec<u64> = outer
            .par_iter()
            .map(|&o| {
                let inner: Vec<u64> = (0..50u64).collect();
                let mapped: Vec<u64> = inner.par_iter().map(|&i| i * o).collect();
                mapped.iter().sum()
            })
            .collect();
        let expect: Vec<u64> = outer.iter().map(|&o| (0..50u64).sum::<u64>() * o).collect();
        assert_eq!(nested, expect);
    }
}
